//! Regenerates every table and figure of the paper's evaluation.
//!
//! Each `fig*`/`table*` function runs the corresponding experiment on the
//! simulated cluster, returns a human-readable text block, and writes the
//! figure's raw series as CSV under the output directory. The `report`
//! binary drives them; `EXPERIMENTS.md` records paper-vs-measured values.

use std::path::Path;

use ignem_cluster::chaos::{run_chaos_observed, ChaosConfig};
use ignem_cluster::config::{ClusterConfig, FsMode};
use ignem_cluster::experiment::{
    run_hive, run_read_micro, run_sort, run_swim, run_swim_observed, run_swim_profiled,
    run_wordcount,
};
use ignem_cluster::explain::{reconcile_critical_path, JobLeadTime, LossCause, TelemetryReport};
use ignem_cluster::metrics::RunMetrics;
use ignem_core::policy::Policy;
use ignem_simcore::metrics::MetricsReport;
use ignem_simcore::perfetto;
use ignem_simcore::profile::HostProfiler;
use ignem_simcore::rng::SimRng;
use ignem_simcore::span::SpanForest;
use ignem_simcore::stats::{Histogram, Samples};
use ignem_simcore::time::{SimDuration, SimTime};
use ignem_simcore::units::GB;
use ignem_storage::device::DeviceProfile;
use ignem_workloads::google::{GoogleTrace, GoogleTraceConfig, UtilizationTimelines};
use ignem_workloads::swim::{SizeBin, SwimConfig, SwimTrace};
use ignem_workloads::tpcds::fig9_queries;

use crate::csv::{f, write_csv};

/// The seed every report run uses; results are bit-reproducible.
pub const REPORT_SEED: u64 = 20180615;

/// A generated report section.
#[derive(Debug, Clone)]
pub struct Section {
    /// Experiment id (e.g. "table1").
    pub id: &'static str,
    /// Rendered text.
    pub text: String,
}

/// Shared context: configuration, the SWIM trace and the (lazily run)
/// SWIM results reused across Tables I–II, Figs. 5–7 and the ablation.
pub struct Report {
    cfg: ClusterConfig,
    out: std::path::PathBuf,
    trace: SwimTrace,
    swim: Option<SwimBundle>,
    trace_out: Option<std::path::PathBuf>,
    perfetto_out: Option<std::path::PathBuf>,
    perfetto_chaos: Option<u64>,
}

/// The fixed metric-aggregation window every report run uses.
const METRICS_WINDOW: SimDuration = SimDuration::from_secs(10);

struct SwimBundle {
    hdfs: RunMetrics,
    ignem: RunMetrics,
    ram: RunMetrics,
    ignem_fifo: RunMetrics,
}

impl Report {
    /// Creates a report context writing CSVs under `out`.
    pub fn new(out: impl AsRef<Path>) -> Self {
        let cfg = ClusterConfig {
            seed: REPORT_SEED,
            ..ClusterConfig::default()
        };
        let trace = SwimTrace::generate(&SwimConfig::default(), &mut SimRng::new(REPORT_SEED));
        Report {
            cfg,
            out: out.as_ref().to_path_buf(),
            trace,
            swim: None,
            trace_out: None,
            perfetto_out: None,
            perfetto_chaos: None,
        }
    }

    /// The cluster configuration used for every experiment.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Sets the path where [`telemetry`](Report::telemetry) additionally
    /// writes the raw event stream as JSONL (the `--trace-out` flag).
    pub fn set_trace_out(&mut self, path: impl AsRef<Path>) {
        self.trace_out = Some(path.as_ref().to_path_buf());
    }

    /// Sets the path where [`telemetry`](Report::telemetry) writes the
    /// run's span trees and metric tracks as Chrome trace-event JSON for
    /// <https://ui.perfetto.dev> (the `--perfetto-out` flag).
    pub fn set_perfetto_out(&mut self, path: impl AsRef<Path>) {
        self.perfetto_out = Some(path.as_ref().to_path_buf());
    }

    /// Exports the Perfetto trace from the given chaos seed instead of
    /// the Table I SWIM run (the `--perfetto-chaos SEED` flag).
    pub fn set_perfetto_chaos(&mut self, seed: u64) {
        self.perfetto_chaos = Some(seed);
    }

    fn swim(&mut self) -> &SwimBundle {
        if self.swim.is_none() {
            self.swim = Some(SwimBundle {
                hdfs: run_swim(&self.cfg, FsMode::Hdfs, &self.trace, None),
                ignem: run_swim(&self.cfg, FsMode::Ignem, &self.trace, None),
                ram: run_swim(&self.cfg, FsMode::HdfsInputsInRam, &self.trace, None),
                ignem_fifo: run_swim(&self.cfg, FsMode::Ignem, &self.trace, Some(Policy::Fifo)),
            });
        }
        self.swim.as_ref().expect("just set")
    }

    // ------------------------------------------------------------------
    // Section II figures
    // ------------------------------------------------------------------

    /// Fig. 1: histograms of 64 MB block-read times from HDD, SSD and RAM
    /// under concurrent mappers. Paper: RAM ≈160× HDD, ≈7× SSD.
    pub fn fig1(&mut self) -> Section {
        let (hdd, ssd, ram) = self.read_micro_runs();
        let mean = |m: &RunMetrics| m.mean_block_read_secs();
        let (mh, ms, mr) = (mean(&hdd), mean(&ssd), mean(&ram));

        let mut rows = Vec::new();
        for (name, m) in [("hdd", &hdd), ("ssd", &ssd), ("ram", &ram)] {
            let max = m.block_reads.iter().map(|r| r.secs).fold(0.0, f64::max);
            let mut h = Histogram::uniform(0.0, (max * 1.001).max(1e-6), 20);
            for r in &m.block_reads {
                h.record(r.secs);
            }
            let rel = h.relative();
            for (i, freq) in rel.iter().enumerate() {
                rows.push(vec![
                    name.to_string(),
                    f(h.edges()[i], 4),
                    f(h.edges()[i + 1], 4),
                    f(*freq, 4),
                ]);
            }
        }
        write_csv(
            &self.out,
            "fig1_block_read_hist",
            &["medium", "lo_s", "hi_s", "freq"],
            &rows,
        );

        let text = format!(
            "Fig. 1 — 64MB block-read times under concurrent mappers\n\
             mean HDD {mh:.3}s   mean SSD {ms:.3}s   mean RAM {mr:.4}s\n\
             RAM is {:.0}x faster than HDD (paper: ~160x)\n\
             RAM is {:.1}x faster than SSD (paper: ~7x)",
            mh / mr,
            ms / mr
        );
        Section { id: "fig1", text }
    }

    /// Fig. 2: CDF of mapper task runtimes on the three media.
    /// Paper: RAM average ≈23× smaller than HDD.
    pub fn fig2(&mut self) -> Section {
        let (hdd, ssd, ram) = self.read_micro_runs();
        let mut rows = Vec::new();
        let mut means = Vec::new();
        for (name, m) in [("hdd", &hdd), ("ssd", &ssd), ("ram", &ram)] {
            let mut s = m.map_task_secs.clone();
            means.push((name, s.mean()));
            for (v, p) in s.cdf_points(64) {
                rows.push(vec![name.to_string(), f(v, 4), f(p, 4)]);
            }
        }
        write_csv(
            &self.out,
            "fig2_task_runtime_cdf",
            &["medium", "secs", "cdf"],
            &rows,
        );
        let mh = means[0].1;
        let mr = means[2].1;
        let text = format!(
            "Fig. 2 — mapper task runtime CDF\n\
             mean task: HDD {:.2}s  SSD {:.2}s  RAM {:.2}s\n\
             RAM tasks are {:.0}x faster than HDD (paper: ~23x)",
            means[0].1,
            means[1].1,
            means[2].1,
            mh / mr
        );
        Section { id: "fig2", text }
    }

    fn read_micro_runs(&self) -> (RunMetrics, RunMetrics, RunMetrics) {
        // A SWIM-like level of read concurrency: 24 concurrent map-only
        // jobs of 8 blocks each.
        let hdd = run_read_micro(&self.cfg, FsMode::Hdfs, 24, 8);
        let mut ssd_cfg = self.cfg.clone();
        ssd_cfg.disk = DeviceProfile::ssd();
        let ssd = run_read_micro(&ssd_cfg, FsMode::Hdfs, 24, 8);
        let ram = run_read_micro(&self.cfg, FsMode::HdfsInputsInRam, 24, 8);
        (hdd, ssd, ram)
    }

    /// Fig. 3: lead-time sufficiency in the (synthetic) Google trace.
    /// Paper: 81% of jobs have lead-time ≥ read-time.
    pub fn fig3(&mut self) -> Section {
        let trace =
            GoogleTrace::generate(&GoogleTraceConfig::default(), &mut SimRng::new(REPORT_SEED));
        let sufficiency = trace.lead_time_sufficiency();
        let (mean_lead, median_lead) = trace.lead_time_stats();
        let mut ratios = trace.read_to_lead_ratios();
        let rows: Vec<Vec<String>> = ratios
            .cdf_points(200)
            .into_iter()
            .map(|(v, p)| vec![f(v, 5), f(p, 5)])
            .collect();
        write_csv(
            &self.out,
            "fig3_read_to_lead_cdf",
            &["read_over_lead", "cdf"],
            &rows,
        );
        let text = format!(
            "Fig. 3 — lead-time vs read-time (Google-trace statistics)\n\
             queueing time: mean {mean_lead:.1}s median {median_lead:.1}s (paper: 8.8 / 1.8)\n\
             jobs with lead-time >= read-time: {:.1}% (paper: 81%)",
            sufficiency * 100.0
        );
        Section { id: "fig3", text }
    }

    /// Fig. 4: per-server disk utilisation over 24 h.
    /// Paper: 40-server mean ≤5% at all times; 3.1% overall daily mean.
    pub fn fig4(&mut self) -> Section {
        let cfg = GoogleTraceConfig::default();
        let u = UtilizationTimelines::generate(&cfg, &mut SimRng::new(REPORT_SEED));
        let group = u.group_mean_timeline(40);
        let mut rows = Vec::new();
        for (w, &g) in group.iter().enumerate() {
            let t = w as u64 * u.window_secs;
            let mut row = vec![t.to_string(), f(g, 5)];
            for s in 0..10 {
                row.push(f(u.timelines[s][w], 5));
            }
            rows.push(row);
        }
        let mut header: Vec<String> = vec!["t_secs".into(), "mean40".into()];
        header.extend((0..10).map(|s| format!("server{s}")));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        write_csv(&self.out, "fig4_disk_utilization", &header_refs, &rows);
        let peak40 = group.iter().cloned().fold(0.0, f64::max);
        let text = format!(
            "Fig. 4 — disk utilisation over 24h ({} servers)\n\
             overall mean {:.1}% (paper: 3.1%)\n\
             peak of the 40-server mean {:.1}% (paper: <=5%)",
            cfg.servers,
            u.overall_mean() * 100.0,
            peak40 * 100.0
        );
        Section { id: "fig4", text }
    }

    // ------------------------------------------------------------------
    // SWIM (Tables I–II, Figs. 5–7, ablation)
    // ------------------------------------------------------------------

    /// Table I: mean SWIM job duration per configuration.
    /// Paper: 14.4 / 12.7 (12%) / 11.4 (21%).
    pub fn table1(&mut self) -> Section {
        let out = self.out.clone();
        let b = self.swim();
        let (h, i, r) = (
            b.hdfs.mean_plan_duration(),
            b.ignem.mean_plan_duration(),
            b.ram.mean_plan_duration(),
        );
        let si = b.ignem.speedup_vs(&b.hdfs) * 100.0;
        let sr = b.ram.speedup_vs(&b.hdfs) * 100.0;
        write_csv(
            &out,
            "table1_swim_job_duration",
            &["config", "mean_job_secs", "speedup_vs_hdfs_pct"],
            &[
                vec!["HDFS".into(), f(h, 2), "0".into()],
                vec!["Ignem".into(), f(i, 2), f(si, 1)],
                vec!["HDFS-Inputs-in-RAM".into(), f(r, 2), f(sr, 1)],
            ],
        );
        let text = format!(
            "Table I — SWIM mean job duration\n\
             HDFS               {h:.2}s\n\
             Ignem              {i:.2}s  (speedup {si:.1}%, paper 12%)\n\
             HDFS-Inputs-in-RAM {r:.2}s  (speedup {sr:.1}%, paper 21%)\n\
             Ignem realises {:.0}% of the upper bound (paper ~60%)",
            si / sr * 100.0
        );
        Section { id: "table1", text }
    }

    /// Fig. 5: mean job-duration reduction by input-size bin.
    /// Paper (Ignem): 8.8% / 7.7% / 25%; RAM large bin ≈60%.
    pub fn fig5(&mut self) -> Section {
        let out = self.out.clone();
        let b = self.swim();
        let bins = |m: &RunMetrics| -> [f64; 3] {
            let mut sum = [0.0; 3];
            let mut cnt = [0usize; 3];
            for p in &m.plans {
                let k = match SizeBin::of(p.input_bytes) {
                    SizeBin::Small => 0,
                    SizeBin::Medium => 1,
                    SizeBin::Large => 2,
                };
                sum[k] += p.duration;
                cnt[k] += 1;
            }
            [0, 1, 2].map(|k| {
                if cnt[k] > 0 {
                    sum[k] / cnt[k] as f64
                } else {
                    0.0
                }
            })
        };
        let (bh, bi, br) = (bins(&b.hdfs), bins(&b.ignem), bins(&b.ram));
        let labels = ["<=64MB", "64-512MB", ">512MB"];
        let mut rows = Vec::new();
        for k in 0..3 {
            rows.push(vec![
                labels[k].to_string(),
                f(bh[k], 2),
                f(bi[k], 2),
                f(br[k], 2),
                f((1.0 - bi[k] / bh[k]) * 100.0, 1),
                f((1.0 - br[k] / bh[k]) * 100.0, 1),
            ]);
        }
        write_csv(
            &out,
            "fig5_speedup_by_bin",
            &[
                "bin",
                "hdfs_s",
                "ignem_s",
                "ram_s",
                "ignem_speedup_pct",
                "ram_speedup_pct",
            ],
            &rows,
        );
        let text = format!(
            "Fig. 5 — mean job-duration reduction by input-size bin\n\
             bin        Ignem    RAM      (paper Ignem: 8.8% / 7.7% / 25%)\n\
             <=64MB     {:>5.1}%  {:>5.1}%\n\
             64-512MB   {:>5.1}%  {:>5.1}%\n\
             >512MB     {:>5.1}%  {:>5.1}%   (paper RAM large bin ~60%)",
            (1.0 - bi[0] / bh[0]) * 100.0,
            (1.0 - br[0] / bh[0]) * 100.0,
            (1.0 - bi[1] / bh[1]) * 100.0,
            (1.0 - br[1] / bh[1]) * 100.0,
            (1.0 - bi[2] / bh[2]) * 100.0,
            (1.0 - br[2] / bh[2]) * 100.0,
        );
        Section { id: "fig5", text }
    }

    /// Table II: mean mapper task duration. Paper: 6.44 / 4.03 (38%) /
    /// 0.28 (96%).
    pub fn table2(&mut self) -> Section {
        let out = self.out.clone();
        let b = self.swim();
        let (h, i, r) = (
            b.hdfs.mean_map_task_secs(),
            b.ignem.mean_map_task_secs(),
            b.ram.mean_map_task_secs(),
        );
        write_csv(
            &out,
            "table2_swim_task_duration",
            &["config", "mean_map_task_secs", "speedup_vs_hdfs_pct"],
            &[
                vec!["HDFS".into(), f(h, 3), "0".into()],
                vec!["Ignem".into(), f(i, 3), f((1.0 - i / h) * 100.0, 1)],
                vec![
                    "HDFS-Inputs-in-RAM".into(),
                    f(r, 3),
                    f((1.0 - r / h) * 100.0, 1),
                ],
            ],
        );
        let text = format!(
            "Table II — SWIM mean mapper duration\n\
             HDFS               {h:.2}s   (paper 6.44s)\n\
             Ignem              {i:.2}s   ({:.0}% faster; paper 4.03s, 38%)\n\
             HDFS-Inputs-in-RAM {r:.2}s   ({:.0}% faster; paper 0.28s, 96%)",
            (1.0 - i / h) * 100.0,
            (1.0 - r / h) * 100.0
        );
        Section { id: "table2", text }
    }

    /// Fig. 6: block-read duration CDFs under HDFS vs Ignem.
    /// Paper: ~40% mean reduction; ~60% of blocks served from memory.
    pub fn fig6(&mut self) -> Section {
        let out = self.out.clone();
        let b = self.swim();
        let mut rows = Vec::new();
        for (name, m) in [("hdfs", &b.hdfs), ("ignem", &b.ignem)] {
            let mut s: Samples = m.block_reads.iter().map(|r| r.secs).collect();
            for (v, p) in s.cdf_points(128) {
                rows.push(vec![name.to_string(), f(v, 4), f(p, 4)]);
            }
        }
        write_csv(
            &out,
            "fig6_block_read_cdf",
            &["config", "secs", "cdf"],
            &rows,
        );
        let reduction = 1.0 - b.ignem.mean_block_read_secs() / b.hdfs.mean_block_read_secs();
        let text = format!(
            "Fig. 6 — SWIM block-read durations\n\
             mean read: HDFS {:.2}s -> Ignem {:.2}s ({:.0}% reduction; paper ~40%)\n\
             blocks served from memory under Ignem: {:.0}% (paper ~60%)",
            b.hdfs.mean_block_read_secs(),
            b.ignem.mean_block_read_secs(),
            reduction * 100.0,
            b.ignem.memory_read_fraction() * 100.0
        );
        Section { id: "fig6", text }
    }

    /// Fig. 7: per-server migrated-memory footprint, Ignem vs the
    /// hypothetical instantaneous scheme. Paper: Ignem ≈2.6× lower.
    pub fn fig7(&mut self) -> Section {
        let out = self.out.clone();
        let b = self.swim();
        let end = b.ignem.makespan;
        let ignem_mean = RunMetrics::mean_nonzero_occupancy(&b.ignem.mem_series, end);
        let hypo_mean = RunMetrics::mean_nonzero_occupancy(&b.ignem.hypothetical_series, end);

        // Histograms of nonzero per-server occupancy, sampled each second.
        let mut rows = Vec::new();
        for (name, series) in [
            ("ignem", &b.ignem.mem_series),
            ("hypothetical", &b.ignem.hypothetical_series),
        ] {
            let samples = sample_nonzero(series, end);
            if samples.is_empty() {
                continue;
            }
            let max = samples.iter().cloned().fold(0.0, f64::max);
            let mut h = Histogram::uniform(0.0, max * 1.001, 24);
            for &v in &samples {
                h.record(v);
            }
            for (i, freq) in h.relative().iter().enumerate() {
                rows.push(vec![
                    name.to_string(),
                    f(h.edges()[i] / 1e9, 4),
                    f(h.edges()[i + 1] / 1e9, 4),
                    f(*freq, 4),
                ]);
            }
        }
        write_csv(
            &out,
            "fig7_memory_usage",
            &["scheme", "lo_gb", "hi_gb", "freq"],
            &rows,
        );
        let text = format!(
            "Fig. 7 — per-server migrated-memory footprint (nonzero samples)\n\
             Ignem mean {:.2} GB   hypothetical-instantaneous mean {:.2} GB\n\
             Ignem uses {:.1}x less memory (paper: 2.6x) while delivering\n\
             {:.0}% of the upper-bound speedup (paper: ~60%)",
            ignem_mean / 1e9,
            hypo_mean / 1e9,
            hypo_mean / ignem_mean.max(1.0),
            b.ignem.speedup_vs(&b.hdfs) / b.ram.speedup_vs(&b.hdfs) * 100.0
        );
        Section { id: "fig7", text }
    }

    /// §IV-C5 ablation: smallest-job-first vs FIFO migration queues.
    /// Paper: disabling prioritization costs ~2 points of speedup (~15% of
    /// the benefit).
    pub fn ablation_priority(&mut self) -> Section {
        let out = self.out.clone();
        let b = self.swim();
        let sjf = b.ignem.speedup_vs(&b.hdfs) * 100.0;
        let fifo = b.ignem_fifo.speedup_vs(&b.hdfs) * 100.0;
        write_csv(
            &out,
            "ablation_priority",
            &["policy", "mean_job_secs", "speedup_pct"],
            &[
                vec![
                    "smallest-job-first".into(),
                    f(b.ignem.mean_plan_duration(), 2),
                    f(sjf, 1),
                ],
                vec![
                    "fifo".into(),
                    f(b.ignem_fifo.mean_plan_duration(), 2),
                    f(fifo, 1),
                ],
            ],
        );
        let text = format!(
            "Ablation (§IV-C5) — migration-queue policy\n\
             smallest-job-first speedup {sjf:.1}%   FIFO speedup {fifo:.1}%\n\
             prioritization contributes {:.1} points ({:.0}% of the benefit; paper ~15%)",
            sjf - fifo,
            (sjf - fifo) / sjf.max(1e-9) * 100.0
        );
        Section {
            id: "ablation-priority",
            text,
        }
    }

    // ------------------------------------------------------------------
    // Standalone jobs and Hive
    // ------------------------------------------------------------------

    /// Table III: the 40 GB sort. Paper: 147 / 114 (22%) / 75 (49%).
    pub fn table3(&mut self) -> Section {
        let h = run_sort(&self.cfg, FsMode::Hdfs, 40 * GB);
        let i = run_sort(&self.cfg, FsMode::Ignem, 40 * GB);
        let r = run_sort(&self.cfg, FsMode::HdfsInputsInRam, 40 * GB);
        let (dh, di, dr) = (
            h.mean_plan_duration(),
            i.mean_plan_duration(),
            r.mean_plan_duration(),
        );
        write_csv(
            &self.out,
            "table3_sort",
            &["config", "duration_secs", "speedup_vs_hdfs_pct"],
            &[
                vec!["HDFS".into(), f(dh, 1), "0".into()],
                vec!["Ignem".into(), f(di, 1), f((1.0 - di / dh) * 100.0, 1)],
                vec![
                    "HDFS-Inputs-in-RAM".into(),
                    f(dr, 1),
                    f((1.0 - dr / dh) * 100.0, 1),
                ],
            ],
        );
        let text = format!(
            "Table III — sort (40 GB)\n\
             HDFS               {dh:.0}s\n\
             Ignem              {di:.0}s  ({:.0}% faster; paper 22%)\n\
             HDFS-Inputs-in-RAM {dr:.0}s  ({:.0}% faster; paper 49%)",
            (1.0 - di / dh) * 100.0,
            (1.0 - dr / dh) * 100.0
        );
        Section { id: "table3", text }
    }

    /// Fig. 8: wordcount input-size sweep with artificial lead-time. Run on
    /// the **contended** HDD operating point (see `DeviceProfile::
    /// hdd_contended`), where the paper's "adding delay speeds the job up"
    /// effect lives.
    pub fn fig8(&mut self) -> Section {
        let mut cfg = self.cfg.clone();
        cfg.disk = DeviceProfile::hdd_contended();
        let mut rows = Vec::new();
        let mut text = String::from(
            "Fig. 8 — wordcount sweep (contended HDD)\n  GB     HDFS    Ignem  Ignem+10s      RAM\n",
        );
        for gb in ignem_workloads::jobs::WORDCOUNT_SWEEP_GB {
            let h = run_wordcount(&cfg, FsMode::Hdfs, gb, SimDuration::ZERO).mean_plan_duration();
            let i = run_wordcount(&cfg, FsMode::Ignem, gb, SimDuration::ZERO).mean_plan_duration();
            let i10 = run_wordcount(&cfg, FsMode::Ignem, gb, SimDuration::from_secs(10))
                .mean_plan_duration();
            let r = run_wordcount(&cfg, FsMode::HdfsInputsInRam, gb, SimDuration::ZERO)
                .mean_plan_duration();
            rows.push(vec![gb.to_string(), f(h, 1), f(i, 1), f(i10, 1), f(r, 1)]);
            text.push_str(&format!("{gb:>4} {h:>8.1} {i:>8.1} {i10:>10.1} {r:>8.1}\n"));
        }
        write_csv(
            &self.out,
            "fig8_wordcount_sweep",
            &["input_gb", "hdfs_s", "ignem_s", "ignem_plus10_s", "ram_s"],
            &rows,
        );
        text.push_str(
            "paper shape: Ignem tracks RAM until ~2GB; Ignem+10s loses at 1GB,\n\
             crosses HDFS by 2GB and beats plain Ignem at 4GB",
        );
        Section { id: "fig8", text }
    }

    /// Fig. 9: Hive/TPC-DS query durations (a) and input sizes (b).
    /// Paper: up to 34% (q3), 20% average, muted for q82/q25/q29.
    pub fn fig9(&mut self) -> Section {
        let queries = fig9_queries();
        let h = run_hive(&self.cfg, FsMode::Hdfs, &queries);
        let i = run_hive(&self.cfg, FsMode::Ignem, &queries);
        let mut rows = Vec::new();
        let mut text = String::from("Fig. 9 — Hive query durations (sorted by input size)\n");
        let mut total = 0.0;
        let mut best = ("", 0.0f64);
        for (qh, qi) in h.plans.iter().zip(&i.plans) {
            let sp = (1.0 - qi.duration / qh.duration) * 100.0;
            total += sp;
            if sp > best.1 {
                best = (&qh.name, sp);
            }
            rows.push(vec![
                qh.name.clone(),
                f(qh.input_bytes as f64 / 1e9, 2),
                f(qh.duration, 1),
                f(qi.duration, 1),
                f(sp, 1),
            ]);
            text.push_str(&format!(
                "  {:<4} in={:>5.1}GB  HDFS {:>6.1}s  Ignem {:>6.1}s  speedup {sp:>5.1}%\n",
                qh.name,
                qh.input_bytes as f64 / 1e9,
                qh.duration,
                qi.duration
            ));
        }
        write_csv(
            &self.out,
            "fig9_hive_queries",
            &["query", "input_gb", "hdfs_s", "ignem_s", "speedup_pct"],
            &rows,
        );
        text.push_str(&format!(
            "average speedup {:.1}% (paper 20%); best {} at {:.1}% (paper: q3, 34%)",
            total / h.plans.len() as f64,
            best.0,
            best.1
        ));
        Section { id: "fig9", text }
    }

    // ------------------------------------------------------------------
    // Extended design-choice ablations (beyond the paper's §IV-C5)
    // ------------------------------------------------------------------

    /// Ablation: migration concurrency per slave. The paper migrates one
    /// block at a time to preserve disk throughput; this sweep checks how
    /// much that choice matters on this substrate.
    pub fn ablation_concurrency(&mut self) -> Section {
        use ignem_cluster::experiment::run_swim_with;
        use ignem_core::command::EvictionMode;
        let hdfs = run_swim(&self.cfg, FsMode::Hdfs, &self.trace, None);
        let mut rows = Vec::new();
        let mut text = String::from("Ablation — concurrent migration reads per slave (paper: 1)\n");
        for k in [1usize, 2, 4, 8] {
            let mut cfg = self.cfg.clone();
            cfg.ignem.max_concurrent_migrations = k;
            let m = run_swim_with(&cfg, FsMode::Ignem, &self.trace, EvictionMode::Explicit);
            let sp = m.speedup_vs(&hdfs) * 100.0;
            rows.push(vec![
                k.to_string(),
                f(m.mean_plan_duration(), 2),
                f(sp, 1),
                f(m.memory_read_fraction() * 100.0, 1),
            ]);
            text.push_str(&format!(
                "  k={k}: mean job {:.2}s  speedup {sp:.1}%  memory reads {:.0}%\n",
                m.mean_plan_duration(),
                m.memory_read_fraction() * 100.0
            ));
        }
        write_csv(
            &self.out,
            "ablation_concurrency",
            &[
                "concurrent_migrations",
                "mean_job_secs",
                "speedup_pct",
                "mem_read_pct",
            ],
            &rows,
        );
        Section {
            id: "ablation-concurrency",
            text,
        }
    }

    /// Ablation: replicas migrated per block. The paper migrates a single
    /// random replica (§III-A2); extra copies burn disk bandwidth and
    /// memory for little gain because remote memory reads are cheap.
    pub fn ablation_replicas(&mut self) -> Section {
        use ignem_cluster::experiment::run_swim_with;
        use ignem_core::command::EvictionMode;
        let hdfs = run_swim(&self.cfg, FsMode::Hdfs, &self.trace, None);
        let mut rows = Vec::new();
        let mut text = String::from("Ablation — replicas migrated per block (paper: 1)\n");
        for k in [1usize, 2, 3] {
            let mut cfg = self.cfg.clone();
            cfg.master.replicas_to_migrate = k;
            let m = run_swim_with(&cfg, FsMode::Ignem, &self.trace, EvictionMode::Explicit);
            let sp = m.speedup_vs(&hdfs) * 100.0;
            let gb = m.slave_stats.migrated_bytes as f64 / 1e9;
            rows.push(vec![
                k.to_string(),
                f(m.mean_plan_duration(), 2),
                f(sp, 1),
                f(gb, 1),
            ]);
            text.push_str(&format!(
                "  replicas={k}: mean job {:.2}s  speedup {sp:.1}%  migrated {gb:.1} GB\n",
                m.mean_plan_duration()
            ));
        }
        write_csv(
            &self.out,
            "ablation_replicas",
            &["replicas", "mean_job_secs", "speedup_pct", "migrated_gb"],
            &rows,
        );
        text.push_str("extra replicas multiply migration IO without matching gains");
        Section {
            id: "ablation-replicas",
            text,
        }
    }

    /// Ablation: explicit vs implicit eviction (§III-A4's opt-in mode).
    /// Implicit eviction frees memory as soon as the job reads a block.
    pub fn ablation_eviction(&mut self) -> Section {
        use ignem_cluster::experiment::run_swim_with;
        use ignem_core::command::EvictionMode;
        let hdfs = run_swim(&self.cfg, FsMode::Hdfs, &self.trace, None);
        let mut rows = Vec::new();
        let mut text = String::from("Ablation — eviction mode (§III-A4)\n");
        for (name, mode) in [
            ("explicit", EvictionMode::Explicit),
            ("implicit", EvictionMode::Implicit),
        ] {
            let m = run_swim_with(&self.cfg, FsMode::Ignem, &self.trace, mode);
            let sp = m.speedup_vs(&hdfs) * 100.0;
            let mean_occ = RunMetrics::mean_nonzero_occupancy(&m.mem_series, m.makespan) / 1e9;
            rows.push(vec![
                name.to_string(),
                f(m.mean_plan_duration(), 2),
                f(sp, 1),
                f(mean_occ, 2),
            ]);
            text.push_str(&format!(
                "  {name}: mean job {:.2}s  speedup {sp:.1}%  mean nonzero occupancy {mean_occ:.2} GB\n",
                m.mean_plan_duration()
            ));
        }
        write_csv(
            &self.out,
            "ablation_eviction",
            &["mode", "mean_job_secs", "speedup_pct", "mean_occupancy_gb"],
            &rows,
        );
        text.push_str(
            "implicit eviction trades a sliver of re-read safety for a smaller footprint",
        );
        Section {
            id: "ablation-eviction",
            text,
        }
    }

    /// Ablation: heartbeat interval — one of the paper's §II-C lead-time
    /// sources. Longer heartbeats give Ignem more runway but slow everyone.
    pub fn ablation_heartbeat(&mut self) -> Section {
        let mut rows = Vec::new();
        let mut text = String::from("Ablation — scheduler heartbeat interval (lead-time source)\n");
        for secs in [1u64, 3, 6] {
            let mut cfg = self.cfg.clone();
            cfg.compute.heartbeat = SimDuration::from_secs(secs);
            let hdfs = run_swim(&cfg, FsMode::Hdfs, &self.trace, None);
            let ignem = run_swim(&cfg, FsMode::Ignem, &self.trace, None);
            let sp = ignem.speedup_vs(&hdfs) * 100.0;
            rows.push(vec![
                secs.to_string(),
                f(hdfs.mean_plan_duration(), 2),
                f(ignem.mean_plan_duration(), 2),
                f(sp, 1),
                f(ignem.memory_read_fraction() * 100.0, 1),
            ]);
            text.push_str(&format!(
                "  hb={secs}s: HDFS {:.2}s  Ignem {:.2}s  speedup {sp:.1}%  memory reads {:.0}%\n",
                hdfs.mean_plan_duration(),
                ignem.mean_plan_duration(),
                ignem.memory_read_fraction() * 100.0
            ));
        }
        write_csv(
            &self.out,
            "ablation_heartbeat",
            &[
                "heartbeat_s",
                "hdfs_s",
                "ignem_s",
                "speedup_pct",
                "mem_read_pct",
            ],
            &rows,
        );
        Section {
            id: "ablation-heartbeat",
            text,
        }
    }

    /// Robustness check: does Ignem's benefit survive heterogeneous task
    /// service times (stragglers)? The jitter multiplier is mean-one, so
    /// the workload's expected compute cost is identical across rows.
    pub fn ablation_jitter(&mut self) -> Section {
        let mut rows = Vec::new();
        let mut text =
            String::from("Ablation — compute-time heterogeneity (mean-one log-normal jitter)\n");
        for sigma in [0.0f64, 0.3, 0.6] {
            let mut cfg = self.cfg.clone();
            cfg.compute.compute_jitter_sigma = sigma;
            let hdfs = run_swim(&cfg, FsMode::Hdfs, &self.trace, None);
            let ignem = run_swim(&cfg, FsMode::Ignem, &self.trace, None);
            let sp = ignem.speedup_vs(&hdfs) * 100.0;
            rows.push(vec![
                f(sigma, 1),
                f(hdfs.mean_plan_duration(), 2),
                f(ignem.mean_plan_duration(), 2),
                f(sp, 1),
            ]);
            text.push_str(&format!(
                "  sigma={sigma:.1}: HDFS {:.2}s  Ignem {:.2}s  speedup {sp:.1}%\n",
                hdfs.mean_plan_duration(),
                ignem.mean_plan_duration()
            ));
        }
        write_csv(
            &self.out,
            "ablation_jitter",
            &["sigma", "hdfs_s", "ignem_s", "speedup_pct"],
            &rows,
        );
        text.push_str("Ignem's benefit is not an artifact of deterministic task times");
        Section {
            id: "ablation-jitter",
            text,
        }
    }

    /// Extension (§IV-E future work): the benefit-aware migration policy —
    /// "a migration scheme that can infer the Ignem speed-up curve … can
    /// prioritize jobs which will benefit more" — swept over its sweet-spot
    /// parameter against the paper's smallest-job-first default.
    pub fn extension_benefit_aware(&mut self) -> Section {
        let hdfs = run_swim(&self.cfg, FsMode::Hdfs, &self.trace, None);
        let sjf = run_swim(&self.cfg, FsMode::Ignem, &self.trace, None);
        let mut rows = vec![vec![
            "smallest-job-first".to_string(),
            "-".to_string(),
            f(sjf.mean_plan_duration(), 2),
            f(sjf.speedup_vs(&hdfs) * 100.0, 1),
        ]];
        let mut text = format!(
            "Extension (§IV-E) — benefit-aware migration policy\n\
             smallest-job-first (paper): speedup {:.1}%\n",
            sjf.speedup_vs(&hdfs) * 100.0
        );
        for gb in [1u64, 4, 16] {
            let m = run_swim(
                &self.cfg,
                FsMode::Ignem,
                &self.trace,
                Some(Policy::BenefitAware {
                    sweet_spot_bytes: gb * GB,
                }),
            );
            let sp = m.speedup_vs(&hdfs) * 100.0;
            rows.push(vec![
                "benefit-aware".to_string(),
                gb.to_string(),
                f(m.mean_plan_duration(), 2),
                f(sp, 1),
            ]);
            text.push_str(&format!(
                "  benefit-aware (sweet spot {gb} GB): speedup {sp:.1}%\n"
            ));
        }
        write_csv(
            &self.out,
            "extension_benefit_aware",
            &["policy", "sweet_spot_gb", "mean_job_secs", "speedup_pct"],
            &rows,
        );
        Section {
            id: "extension-benefit",
            text,
        }
    }

    /// Extension (paper §V related work): Ignem vs a PACMan-style LRU read
    /// cache. Caching only helps *repeat* reads; the paper's point is that
    /// 30% of production tasks read singly-accessed data that caching can
    /// never serve — but proactive migration can.
    pub fn extension_caching(&mut self) -> Section {
        use ignem_cluster::experiment::run_rereads;
        let sets = 8;
        let bytes = 2 * GB;
        let (_, h_first, h_rep) = run_rereads(&self.cfg, FsMode::Hdfs, sets, bytes);
        let mut cache_cfg = self.cfg.clone();
        cache_cfg.cache_reads = true;
        let (_, c_first, c_rep) = run_rereads(&cache_cfg, FsMode::Hdfs, sets, bytes);
        let (_, i_first, i_rep) = run_rereads(&self.cfg, FsMode::Ignem, sets, bytes);
        let rows = vec![
            vec!["hdfs".into(), f(h_first, 2), f(h_rep, 2)],
            vec!["lru-cache".into(), f(c_first, 2), f(c_rep, 2)],
            vec!["ignem".into(), f(i_first, 2), f(i_rep, 2)],
        ];
        write_csv(
            &self.out,
            "extension_caching",
            &["config", "first_read_mean_s", "repeat_read_mean_s"],
            &rows,
        );
        let text = format!(
            "Extension (§V) — proactive migration vs reactive caching\n\
             {sets} file sets of {} GB, each read twice (cold, then repeat)\n\
             config      first-read  repeat-read\n\
             HDFS        {h_first:>9.2}s {h_rep:>11.2}s\n\
             LRU cache   {c_first:>9.2}s {c_rep:>11.2}s   (helps repeats only)\n\
             Ignem       {i_first:>9.2}s {i_rep:>11.2}s   (helps both)\n\
             caching cannot touch the singly-read cold reads Ignem targets\n\
             (PACMan's own authors: 30% of production tasks read such data)",
            bytes / GB
        );
        Section {
            id: "extension-caching",
            text,
        }
    }

    /// Extension (paper §I motivation): iterative ML jobs. Cold reads
    /// inflate the first iteration (15× for logistic regression, 2.5× for
    /// k-means on the paper's cited Spark numbers); Ignem flattens the
    /// first-iteration penalty by pre-warming the training set.
    pub fn extension_iterative(&mut self) -> Section {
        use ignem_cluster::experiment::run_iterative;
        use ignem_workloads::iterative::IterativeJob;
        let files = |p: &str| -> Vec<String> { (0..4).map(|i| format!("{p}/part-{i}")).collect() };
        let jobs = [
            IterativeJob::logistic_regression(files("/ml/lr"), 8 * GB, 6),
            IterativeJob::kmeans(files("/ml/km"), 8 * GB, 6),
        ];
        let mut rows = Vec::new();
        let mut text = String::from(
            "Extension (§I) — iterative ML: first-iteration inflation from cold reads\n",
        );
        for job in &jobs {
            let mut line = format!("  {:<7}", job.name);
            for (mode_name, mode) in [("HDFS", FsMode::Hdfs), ("Ignem", FsMode::Ignem)] {
                let m = run_iterative(&self.cfg, mode, job);
                let iters: Vec<f64> = m.jobs.iter().map(|j| j.duration).collect();
                assert!(iters.len() >= 2, "need multiple iterations");
                let warm = iters[1..].iter().sum::<f64>() / (iters.len() - 1) as f64;
                let inflation = iters[0] / warm;
                rows.push(vec![
                    job.name.clone(),
                    mode_name.to_string(),
                    f(iters[0], 2),
                    f(warm, 2),
                    f(inflation, 2),
                ]);
                line.push_str(&format!(
                    "  {mode_name}: iter1 {:.1}s, warm {:.1}s ({inflation:.1}x)",
                    iters[0], warm
                ));
            }
            text.push_str(&line);
            text.push('\n');
        }
        write_csv(
            &self.out,
            "extension_iterative",
            &["job", "config", "iter1_s", "warm_iter_s", "inflation"],
            &rows,
        );
        text.push_str(
            "paper's cited Spark numbers: logreg ~15x, k-means ~2.5x inflation;\n\
             Ignem pulls the first iteration toward warm-iteration speed",
        );
        Section {
            id: "extension-iterative",
            text,
        }
    }

    /// Telemetry deep-dive (not a paper figure): replays the Table I
    /// SWIM/Ignem run with the flight recorder and the sim-time metrics
    /// registry installed, folds the event stream into per-block
    /// migration-race verdicts, per-job lead-time decompositions, and
    /// causal span trees with per-category critical paths, and checks
    /// that all three views reconcile exactly with the run's metrics.
    /// When a trace path is set ([`Report::set_trace_out`]), the raw
    /// JSONL stream is written there too; when a Perfetto path is set
    /// ([`Report::set_perfetto_out`]), the span trees and metric tracks
    /// go there as Chrome trace-event JSON.
    pub fn telemetry(&mut self) -> Section {
        let (metrics, recorder, mreport) = run_swim_observed(
            &self.cfg,
            FsMode::Ignem,
            &self.trace,
            1 << 22,
            METRICS_WINDOW,
        );
        if let Some(path) = &self.trace_out {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).expect("create trace dir");
                }
            }
            std::fs::write(path, recorder.to_jsonl()).expect("write trace JSONL");
        }
        let events = recorder.events();
        let report = TelemetryReport::from_events(&events);
        report
            .reconcile(&metrics)
            .expect("telemetry verdicts must reconcile with run metrics");

        let mut rows = vec![vec!["won_race".to_string(), report.won().to_string()]];
        for cause in LossCause::ALL {
            rows.push(vec![
                cause.tag().to_string(),
                report.lost_with(cause).to_string(),
            ]);
        }
        write_csv(&self.out, "telemetry_causes", &["verdict", "reads"], &rows);

        let lt_rows: Vec<Vec<String>> = report
            .lead_times
            .iter()
            .map(|lt| {
                vec![
                    lt.job.to_string(),
                    f(lt.queue_delay.as_secs_f64(), 3),
                    f(lt.heartbeat_delay.as_secs_f64(), 3),
                    f(lt.migration_service.as_secs_f64(), 3),
                ]
            })
            .collect();
        write_csv(
            &self.out,
            "telemetry_lead_times",
            &[
                "job",
                "queue_delay_s",
                "heartbeat_delay_s",
                "migration_service_s",
            ],
            &lt_rows,
        );

        // Causal span trees and the per-category critical path, cross-
        // checked against the explainer's decomposition by integer
        // equality (DESIGN.md §12).
        let forest = SpanForest::build(&events);
        let path = forest.critical_path();
        reconcile_critical_path(&path, &report, &metrics)
            .expect("critical path must reconcile with explainer lead times");
        let cp_rows: Vec<Vec<String>> = path
            .jobs
            .iter()
            .map(|j| {
                vec![
                    j.job.to_string(),
                    j.queueing.as_micros().to_string(),
                    j.master_processing.as_micros().to_string(),
                    j.disk_contention.as_micros().to_string(),
                    j.migration_queue.as_micros().to_string(),
                    j.network.as_micros().to_string(),
                    j.retransmission_backoff.as_micros().to_string(),
                ]
            })
            .collect();
        write_csv(
            &self.out,
            "telemetry_critical_path",
            &[
                "job",
                "queueing_us",
                "master_processing_us",
                "disk_contention_us",
                "migration_queue_us",
                "network_us",
                "retransmission_backoff_us",
            ],
            &cp_rows,
        );

        // Windowed sim-time metrics: CSV + JSONL exports.
        write_csv(
            &self.out,
            "metrics_windows",
            &MetricsReport::csv_header(),
            &mreport.to_csv_rows(),
        );
        std::fs::write(self.out.join("metrics_windows.jsonl"), mreport.to_jsonl())
            .expect("write metrics JSONL");

        // Perfetto trace: the chaos world when a seed is set, else this
        // SWIM run.
        let mut perfetto_line = String::new();
        if let Some(p) = &self.perfetto_out {
            let json = match self.perfetto_chaos {
                Some(seed) => {
                    let cfg = ChaosConfig {
                        seed,
                        ..ChaosConfig::default()
                    };
                    let (chaos, cm) = run_chaos_observed(&cfg, METRICS_WINDOW);
                    assert_eq!(
                        chaos.events_dropped, 0,
                        "chaos recorder must hold the whole stream"
                    );
                    perfetto::export(&SpanForest::build(&chaos.events), Some(&cm))
                }
                None => perfetto::export(&forest, Some(&mreport)),
            };
            if let Some(dir) = p.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).expect("create perfetto dir");
                }
            }
            std::fs::write(p, json).expect("write perfetto trace");
            perfetto_line = format!(
                "\nperfetto trace ({}) written to {}",
                match self.perfetto_chaos {
                    Some(seed) => format!("chaos seed {seed}"),
                    None => "SWIM run".to_string(),
                },
                p.display()
            );
        }

        let n = report.lead_times.len().max(1) as f64;
        let mean = |sel: fn(&JobLeadTime) -> f64| -> f64 {
            report.lead_times.iter().map(sel).sum::<f64>() / n
        };
        let causes = LossCause::ALL
            .iter()
            .map(|&c| format!("{} {}", c.tag(), report.lost_with(c)))
            .collect::<Vec<_>>()
            .join("   ");
        let overflow = if recorder.dropped() > 0 {
            format!(
                "\nWARNING: flight recorder overflowed — {} records dropped; \
                 spans and verdicts below audit a truncated stream",
                recorder.dropped()
            )
        } else {
            String::new()
        };
        let text = format!(
            "Telemetry — migration-race explainer over the Table I SWIM/Ignem run\n\
             {} events recorded ({} dropped), {} block reads explained{overflow}\n\
             won race (memory): {}   lost race (disk): {}\n\
             loss causes: {causes}\n\
             mean lead time: queue {:.2}s + heartbeat {:.2}s; \
             migration service {:.2}s per job\n\
             {} causal spans across {} completed-migration critical paths \
             (reconciled exactly)\n\
             {} metric windows of {}s exported (CSV + JSONL){perfetto_line}",
            events.len(),
            recorder.dropped(),
            report.verdicts.len(),
            report.won(),
            report.lost(),
            mean(|lt| lt.queue_delay.as_secs_f64()),
            mean(|lt| lt.heartbeat_delay.as_secs_f64()),
            mean(|lt| lt.migration_service.as_secs_f64()),
            forest.spans.len(),
            path.jobs.len(),
            mreport.windows.len(),
            METRICS_WINDOW.as_secs_f64() as u64,
        );
        Section {
            id: "telemetry",
            text,
        }
    }

    /// Host-time profile (not a paper figure): reruns the Table I
    /// SWIM/Ignem run with the [`HostProfiler`] attached, attributing the
    /// engine's wall-clock time to event-type buckets. The profile is
    /// purely observational — the simulated run is bit-identical — but
    /// the wall-clock numbers themselves naturally vary host to host.
    pub fn profile(&mut self) -> Section {
        let t0 = crate::timing::wall_clock();
        let profiler = HostProfiler::new(Box::new(move || t0.elapsed().as_nanos() as u64));
        let metrics = run_swim_profiled(&self.cfg, FsMode::Ignem, &self.trace, profiler.clone());
        let mut buckets = profiler.report();
        let total_nanos: u64 = buckets.iter().map(|(_, b)| b.nanos).sum();
        let total_events: u64 = buckets.iter().map(|(_, b)| b.count).sum();

        let rows: Vec<Vec<String>> = buckets
            .iter()
            .map(|(name, b)| {
                vec![
                    name.to_string(),
                    b.count.to_string(),
                    (b.nanos / 1_000).to_string(),
                ]
            })
            .collect();
        write_csv(
            &self.out,
            "profile_event_buckets",
            &["event_kind", "events", "host_us"],
            &rows,
        );

        buckets.sort_by(|a, b| b.1.nanos.cmp(&a.1.nanos).then(a.0.cmp(b.0)));
        let mut text = format!(
            "Host profile — engine wall-clock by event kind (Table I SWIM/Ignem run)\n\
             {} events handled in {:.1} ms of host time ({} sim-seconds)\n",
            total_events,
            total_nanos as f64 / 1e6,
            metrics.makespan.as_secs_f64() as u64,
        );
        for (name, b) in buckets.iter().take(8) {
            text.push_str(&format!(
                "  {:<18} {:>8} events  {:>9.2} ms  {:>5.1}%\n",
                name,
                b.count,
                b.nanos as f64 / 1e6,
                b.nanos as f64 / (total_nanos.max(1)) as f64 * 100.0
            ));
        }
        text.push_str("full per-kind table in profile_event_buckets.csv");
        Section {
            id: "profile",
            text,
        }
    }

    /// Runs every section in paper order, then the extended ablations.
    pub fn all(&mut self) -> Vec<Section> {
        vec![
            self.fig1(),
            self.fig2(),
            self.fig3(),
            self.fig4(),
            self.table1(),
            self.fig5(),
            self.table2(),
            self.fig6(),
            self.fig7(),
            self.table3(),
            self.fig8(),
            self.fig9(),
            self.ablation_priority(),
            self.ablation_concurrency(),
            self.ablation_replicas(),
            self.ablation_eviction(),
            self.ablation_heartbeat(),
            self.ablation_jitter(),
            self.extension_benefit_aware(),
            self.extension_iterative(),
            self.extension_caching(),
            self.telemetry(),
            self.profile(),
        ]
    }
}

/// Samples step-series at 1 s resolution and keeps nonzero values (Fig. 7's
/// "only samples when memory usage is non-zero").
fn sample_nonzero(series: &[Vec<(SimTime, f64)>], end: SimTime) -> Vec<f64> {
    let mut out = Vec::new();
    for node in series {
        if node.is_empty() {
            continue;
        }
        let mut idx = 0;
        let mut t = SimTime::ZERO;
        let mut current = 0.0;
        while t <= end {
            while idx < node.len() && node[idx].0 <= t {
                current = node[idx].1;
                idx += 1;
            }
            if current > 0.0 {
                out.push(current);
            }
            t += SimDuration::from_secs(1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> std::path::PathBuf {
        std::env::temp_dir().join("ignem-report-test")
    }

    #[test]
    fn fig3_and_fig4_run() {
        let mut r = Report::new(tmp());
        let s3 = r.fig3();
        assert!(s3.text.contains("81%"));
        let s4 = r.fig4();
        assert!(s4.text.contains("3.1%"));
    }

    #[test]
    fn sample_nonzero_skips_zero_spans() {
        let series = vec![vec![
            (SimTime::ZERO, 0.0),
            (SimTime::from_secs(2), 5.0),
            (SimTime::from_secs(4), 0.0),
        ]];
        let got = sample_nonzero(&series, SimTime::from_secs(6));
        assert_eq!(got, vec![5.0, 5.0]);
    }

    #[test]
    fn swim_sections_share_one_run() {
        let mut r = Report::new(tmp());
        let t1 = r.table1();
        let t2 = r.table2();
        assert!(t1.text.contains("Table I"));
        assert!(t2.text.contains("Table II"));
    }
}
