//! Tiny CSV writer (no external dependency needed for plain numeric CSV).

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Writes rows of string-able cells to `<dir>/<name>.csv` with a header.
///
/// # Panics
///
/// Panics on IO errors (report generation is a batch tool; failing loudly
/// is the right behaviour) or if a row width disagrees with the header.
pub fn write_csv<P: AsRef<Path>>(
    dir: P,
    name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> PathBuf {
    let dir = dir.as_ref();
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", header.join(",")).expect("write header");
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width mismatch in {name}");
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    path
}

/// Formats a float with fixed precision for CSV cells.
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_round_trips() {
        let dir = std::env::temp_dir().join("ignem-csv-test");
        let path = write_csv(
            &dir,
            "t",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec![f(0.5, 2), f(1.5, 2)]],
        );
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "a,b\n1,2\n0.50,1.50\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let dir = std::env::temp_dir().join("ignem-csv-test2");
        write_csv(&dir, "bad", &["a", "b"], &[vec!["1".into()]]);
    }
}
