//! # ignem-bench — the paper's evaluation, regenerated
//!
//! One function per table and figure of the Ignem paper (§II motivation
//! figures and the full §IV evaluation), all driven by the deterministic
//! cluster simulator. The `report` binary renders every section and writes
//! the raw series as CSV; `benches/` wraps the same experiments in
//! Criterion for `cargo bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod report;
pub mod timing;

pub use report::{Report, Section, REPORT_SEED};
pub use timing::wall_clock;
