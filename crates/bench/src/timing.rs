//! The bench harness's one sanctioned wall-clock site.
//!
//! Everything simulated runs on [`ignem_simcore::time::SimTime`]; real time
//! exists only to measure how fast the simulator itself executes. The D10
//! taint pass treats this function as a *structural* sanitizer boundary:
//! raw wall-clock reads anywhere else in the bench crate are violations,
//! and the returned `Instant` is considered clean because it never feeds
//! back into simulation scheduling, seeding, or telemetry. No string-based
//! allow is needed — the boundary is checked, not suppressed.

use std::time::Instant;

/// Reads the host monotonic clock for bench timing.
///
/// This is the only place outside tests where real time may be observed;
/// benches call it before and use [`Instant::elapsed`] after the measured
/// loop. Simulation code must never call this — same-seed replay has to be
/// independent of how fast the host happens to run.
pub fn wall_clock() -> Instant {
    Instant::now()
}
