//! The bench harness's one sanctioned wall-clock site.
//!
//! Everything simulated runs on [`ignem_simcore::time::SimTime`]; real time
//! exists only to measure how fast the simulator itself executes. Lint rule
//! D01 bans wall-clock reads everywhere else, so every bench routes its
//! timing through [`wall_clock`] and this module carries the single allow.

use std::time::Instant;

/// Reads the host monotonic clock for bench timing.
///
/// This is the only place outside tests where real time may be observed;
/// benches call it before and use [`Instant::elapsed`] after the measured
/// loop. Simulation code must never call this — same-seed replay has to be
/// independent of how fast the host happens to run.
pub fn wall_clock() -> Instant {
    // lint: allow(D01, reason = "single sanctioned wall-clock read for the bench harness")
    Instant::now()
}
