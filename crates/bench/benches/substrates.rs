//! Microbenchmarks of the substrate data structures: the costs that bound
//! how large a cluster/workload the simulator can handle.
//!
//! A minimal self-contained harness (`harness = false`) keeps the build
//! free of external crates: the repository must compile fully offline.

use std::hint::black_box;

use ignem_bench::wall_clock;

use ignem_core::command::{EvictionMode, JobId, MigrateCommand, MigrateRequest};
use ignem_core::master::IgnemMaster;
use ignem_core::policy::Policy;
use ignem_core::slave::{IgnemConfig, IgnemSlave, SlaveAction};
use ignem_dfs::block::BlockId;
use ignem_dfs::namenode::{DfsConfig, NameNode};
use ignem_netsim::NodeId;
use ignem_simcore::event::Engine;
use ignem_simcore::flow::{FlowId, FlowResource};
use ignem_simcore::rng::SimRng;
use ignem_simcore::time::{SimDuration, SimTime};
use ignem_storage::memstore::{MemStore, Residency};

const ITERS: u32 = 20;

fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    black_box(f()); // warm-up
    let start = wall_clock();
    for _ in 0..ITERS {
        black_box(f());
    }
    let per_us = start.elapsed().as_secs_f64() * 1e6 / ITERS as f64;
    println!("{name:<44} {per_us:>12.1} us/iter ({ITERS} iters)");
}

fn bench_engine_throughput() {
    bench("engine_schedule_pop_10k", || {
        let mut e: Engine<u64> = Engine::new(0);
        for i in 0..10_000u64 {
            e.schedule_at(SimTime::from_micros(i * 7 % 10_000), i);
        }
        let mut sum = 0u64;
        while let Some(v) = e.pop() {
            sum = sum.wrapping_add(v);
        }
        sum
    });
}

fn bench_flow_resource() {
    bench("flow_resource_64_concurrent", || {
        let mut r = FlowResource::new(140e6, 0.5);
        for i in 0..64u64 {
            r.add(
                SimTime::ZERO,
                FlowId(i),
                (1 + i) as f64 * 1e6,
                SimDuration::from_millis(8),
            );
        }
        let mut done = 0;
        while let Some(t) = r.next_event() {
            done += r.advance(t).len();
        }
        done
    });
}

fn bench_namenode_placement() {
    bench("namenode_create_1000_blocks", || {
        let mut nn = NameNode::new(DfsConfig::default());
        for n in 0..8 {
            nn.register_node(NodeId(n));
        }
        let mut rng = SimRng::new(1);
        nn.create_file("/big", 1000 * (64 << 20), &mut rng).unwrap();
        nn.block_count()
    });
}

fn bench_slave_queue() {
    for (name, policy) in [
        ("smallest_job_first", Policy::SmallestJobFirst),
        ("fifo", Policy::Fifo),
    ] {
        bench(&format!("slave_queue_drain_500/{name}"), || {
            let mut slave = IgnemSlave::new(
                NodeId(0),
                IgnemConfig {
                    policy,
                    ..IgnemConfig::default()
                },
            );
            let mut mem: MemStore<BlockId> = MemStore::new(1 << 40);
            let cmds: Vec<MigrateCommand> = (0..500u64)
                .map(|i| MigrateCommand {
                    job: JobId(i % 50),
                    block: BlockId(i),
                    bytes: 64 << 20,
                    mode: EvictionMode::Explicit,
                    job_input_bytes: (i % 50 + 1) * (64 << 20),
                    submitted: SimTime::from_micros(i),
                })
                .collect();
            let mut actions = slave.enqueue(SimTime::ZERO, cmds, &mut mem);
            let mut migrated = 0;
            let mut clock = 1u64;
            while let Some(SlaveAction::StartRead { block, .. }) = actions
                .iter()
                .find(|a| matches!(a, SlaveAction::StartRead { .. }))
                .cloned()
            {
                migrated += 1;
                actions = slave.on_read_done(SimTime::from_secs(clock), block, &mut mem);
                clock += 1;
                // Keep the buffer from filling: evict each job as soon
                // as its block lands.
                if mem.available() < (64 << 20) {
                    for j in 0..50 {
                        slave.on_evict_job(SimTime::from_secs(clock), JobId(j), &mut mem);
                    }
                }
            }
            migrated
        });
    }
}

fn bench_master_scalability() {
    // §III-A6: "Can Ignem scale?" — the master's per-request work is file →
    // block resolution + replica choice + batching. Measure a 1000-block
    // migrate request against a populated namespace.
    let mut nn = NameNode::new(DfsConfig::default());
    for n in 0..64 {
        nn.register_node(NodeId(n));
    }
    let mut rng = SimRng::new(1);
    for i in 0..10 {
        nn.create_file(&format!("/warehouse/table-{i}"), 100 * (64 << 20), &mut rng)
            .unwrap();
    }
    bench("master_migrate_1000_blocks", || {
        let mut master = IgnemMaster::new();
        let req = MigrateRequest {
            job: JobId(1),
            files: (0..10).map(|i| format!("/warehouse/table-{i}")).collect(),
            mode: EvictionMode::Explicit,
            submitted: SimTime::ZERO,
        };
        let batches = master.handle_migrate(&req, &nn, &mut rng).unwrap();
        batches.len()
    });
}

fn bench_memstore() {
    bench("memstore_insert_remove_1000", || {
        let mut m: MemStore<u64> = MemStore::new(1 << 40);
        for i in 0..1000u64 {
            m.insert(SimTime::from_micros(i), i, 64 << 20, Residency::Migrated)
                .unwrap();
        }
        for i in 0..1000u64 {
            m.remove(SimTime::from_micros(1000 + i), &i);
        }
        m.len()
    });
}

fn main() {
    bench_engine_throughput();
    bench_flow_resource();
    bench_namenode_placement();
    bench_slave_queue();
    bench_master_scalability();
    bench_memstore();
}
