//! Microbenchmarks of the substrate data structures: the costs that bound
//! how large a cluster/workload the simulator can handle.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ignem_core::command::{EvictionMode, JobId, MigrateCommand};
use ignem_core::policy::Policy;
use ignem_core::slave::{IgnemConfig, IgnemSlave, SlaveAction};
use ignem_dfs::block::BlockId;
use ignem_dfs::namenode::{DfsConfig, NameNode};
use ignem_netsim::NodeId;
use ignem_simcore::event::Engine;
use ignem_simcore::flow::{FlowId, FlowResource};
use ignem_simcore::rng::SimRng;
use ignem_simcore::time::{SimDuration, SimTime};
use ignem_storage::memstore::MemStore;

fn bench_engine_throughput(c: &mut Criterion) {
    c.bench_function("engine_schedule_pop_10k", |b| {
        b.iter(|| {
            let mut e: Engine<u64> = Engine::new(0);
            for i in 0..10_000u64 {
                e.schedule_at(SimTime::from_micros(i * 7 % 10_000), i);
            }
            let mut sum = 0u64;
            while let Some(v) = e.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
}

fn bench_flow_resource(c: &mut Criterion) {
    c.bench_function("flow_resource_64_concurrent", |b| {
        b.iter(|| {
            let mut r = FlowResource::new(140e6, 0.5);
            for i in 0..64u64 {
                r.add(
                    SimTime::ZERO,
                    FlowId(i),
                    (1 + i) as f64 * 1e6,
                    SimDuration::from_millis(8),
                );
            }
            let mut done = 0;
            while let Some(t) = r.next_event() {
                done += r.advance(t).len();
            }
            black_box(done)
        })
    });
}

fn bench_namenode_placement(c: &mut Criterion) {
    c.bench_function("namenode_create_1000_blocks", |b| {
        b.iter(|| {
            let mut nn = NameNode::new(DfsConfig::default());
            for n in 0..8 {
                nn.register_node(NodeId(n));
            }
            let mut rng = SimRng::new(1);
            nn.create_file("/big", 1000 * (64 << 20), &mut rng).unwrap();
            black_box(nn.block_count())
        })
    });
}

fn bench_slave_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("slave_queue_drain_500");
    for (name, policy) in [
        ("smallest_job_first", Policy::SmallestJobFirst),
        ("fifo", Policy::Fifo),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut slave = IgnemSlave::new(
                    NodeId(0),
                    IgnemConfig {
                        policy,
                        ..IgnemConfig::default()
                    },
                );
                let mut mem: MemStore<BlockId> = MemStore::new(1 << 40);
                let cmds: Vec<MigrateCommand> = (0..500u64)
                    .map(|i| MigrateCommand {
                        job: JobId(i % 50),
                        block: BlockId(i),
                        bytes: 64 << 20,
                        mode: EvictionMode::Explicit,
                        job_input_bytes: (i % 50 + 1) * (64 << 20),
                        submitted: SimTime::from_micros(i),
                    })
                    .collect();
                let mut actions = slave.enqueue(SimTime::ZERO, cmds, &mut mem);
                let mut migrated = 0;
                let mut clock = 1u64;
                while let Some(SlaveAction::StartRead { block, .. }) = actions
                    .iter()
                    .find(|a| matches!(a, SlaveAction::StartRead { .. }))
                    .cloned()
                {
                    migrated += 1;
                    actions = slave.on_read_done(SimTime::from_secs(clock), block, &mut mem);
                    clock += 1;
                    // Keep the buffer from filling: evict each job as soon
                    // as its block lands.
                    if mem.available() < (64 << 20) {
                        for j in 0..50 {
                            slave.on_evict_job(SimTime::from_secs(clock), JobId(j), &mut mem);
                        }
                    }
                }
                black_box(migrated)
            })
        });
    }
    g.finish();
}

fn bench_master_scalability(c: &mut Criterion) {
    // §III-A6: "Can Ignem scale?" — the master's per-request work is file →
    // block resolution + replica choice + batching. Measure a 1000-block
    // migrate request against a populated namespace.
    use ignem_core::command::{EvictionMode, MigrateRequest};
    use ignem_core::master::IgnemMaster;

    let mut nn = NameNode::new(DfsConfig::default());
    for n in 0..64 {
        nn.register_node(NodeId(n));
    }
    let mut rng = SimRng::new(1);
    for i in 0..10 {
        nn.create_file(&format!("/warehouse/table-{i}"), 100 * (64 << 20), &mut rng)
            .unwrap();
    }
    c.bench_function("master_migrate_1000_blocks", |b| {
        b.iter(|| {
            let mut master = IgnemMaster::new();
            let req = MigrateRequest {
                job: JobId(1),
                files: (0..10).map(|i| format!("/warehouse/table-{i}")).collect(),
                mode: EvictionMode::Explicit,
                submitted: SimTime::ZERO,
            };
            let batches = master.handle_migrate(&req, &nn, &mut rng).unwrap();
            black_box(batches.len())
        })
    });
}

fn bench_memstore(c: &mut Criterion) {
    use ignem_storage::memstore::Residency;
    c.bench_function("memstore_insert_remove_1000", |b| {
        b.iter(|| {
            let mut m: MemStore<u64> = MemStore::new(1 << 40);
            for i in 0..1000u64 {
                m.insert(SimTime::from_micros(i), i, 64 << 20, Residency::Migrated)
                    .unwrap();
            }
            for i in 0..1000u64 {
                m.remove(SimTime::from_micros(1000 + i), &i);
            }
            black_box(m.len())
        })
    });
}

criterion_group!(
    substrates,
    bench_engine_throughput,
    bench_flow_resource,
    bench_namenode_placement,
    bench_slave_queue,
    bench_master_scalability,
    bench_memstore
);
criterion_main!(substrates);
