//! Criterion benches, one per table/figure of the paper.
//!
//! Each bench measures the wall-clock cost of regenerating the experiment
//! (the simulation itself is the system under test here; the *results* of
//! the experiments are produced by the `report` binary and recorded in
//! `EXPERIMENTS.md`). Workload sizes are scaled down so `cargo bench`
//! completes quickly; the report binary runs the full-size versions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ignem_cluster::config::{ClusterConfig, FsMode};
use ignem_cluster::experiment::{run_hive, run_read_micro, run_sort, run_swim, run_wordcount};
use ignem_core::policy::Policy;
use ignem_simcore::rng::SimRng;
use ignem_simcore::time::SimDuration;
use ignem_simcore::units::GB;
use ignem_storage::device::DeviceProfile;
use ignem_workloads::google::{GoogleTrace, GoogleTraceConfig, UtilizationTimelines};
use ignem_workloads::swim::{SwimConfig, SwimTrace};
use ignem_workloads::tpcds::fig9_queries;

fn small_trace() -> SwimTrace {
    let cfg = SwimConfig {
        jobs: 60,
        total_input: 51 * GB,
        ..SwimConfig::default()
    };
    SwimTrace::generate(&cfg, &mut SimRng::new(20180615))
}

fn bench_fig1_fig2(c: &mut Criterion) {
    let cfg = ClusterConfig::default();
    let mut g = c.benchmark_group("fig1_fig2_block_reads");
    g.sample_size(10);
    g.bench_function("hdd", |b| {
        b.iter(|| black_box(run_read_micro(&cfg, FsMode::Hdfs, 12, 4)))
    });
    let mut ssd_cfg = cfg.clone();
    ssd_cfg.disk = DeviceProfile::ssd();
    g.bench_function("ssd", |b| {
        b.iter(|| black_box(run_read_micro(&ssd_cfg, FsMode::Hdfs, 12, 4)))
    });
    g.bench_function("ram", |b| {
        b.iter(|| black_box(run_read_micro(&cfg, FsMode::HdfsInputsInRam, 12, 4)))
    });
    g.finish();
}

fn bench_fig3_fig4_google(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_fig4_google_trace");
    g.sample_size(10);
    let trace_cfg = GoogleTraceConfig {
        jobs: 5_000,
        servers: 50,
        ..GoogleTraceConfig::default()
    };
    g.bench_function("fig3_lead_time_analysis", |b| {
        b.iter(|| {
            let t = GoogleTrace::generate(&trace_cfg, &mut SimRng::new(1));
            black_box(t.lead_time_sufficiency())
        })
    });
    g.bench_function("fig4_utilization_timelines", |b| {
        b.iter(|| {
            let u = UtilizationTimelines::generate(&trace_cfg, &mut SimRng::new(2));
            black_box(u.overall_mean())
        })
    });
    g.finish();
}

fn bench_table1_table2_swim(c: &mut Criterion) {
    let cfg = ClusterConfig::default();
    let trace = small_trace();
    let mut g = c.benchmark_group("table1_table2_fig5_fig6_fig7_swim");
    g.sample_size(10);
    for (name, mode) in [
        ("hdfs", FsMode::Hdfs),
        ("ignem", FsMode::Ignem),
        ("inputs_in_ram", FsMode::HdfsInputsInRam),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_swim(&cfg, mode, &trace, None)))
        });
    }
    g.finish();
}

fn bench_ablation_priority(c: &mut Criterion) {
    let cfg = ClusterConfig::default();
    let trace = small_trace();
    let mut g = c.benchmark_group("ablation_priority_swim");
    g.sample_size(10);
    g.bench_function("smallest_job_first", |b| {
        b.iter(|| {
            black_box(run_swim(
                &cfg,
                FsMode::Ignem,
                &trace,
                Some(Policy::SmallestJobFirst),
            ))
        })
    });
    g.bench_function("fifo", |b| {
        b.iter(|| black_box(run_swim(&cfg, FsMode::Ignem, &trace, Some(Policy::Fifo))))
    });
    g.finish();
}

fn bench_table3_sort(c: &mut Criterion) {
    let cfg = ClusterConfig::default();
    let mut g = c.benchmark_group("table3_sort");
    g.sample_size(10);
    for (name, mode) in [
        ("hdfs", FsMode::Hdfs),
        ("ignem", FsMode::Ignem),
        ("inputs_in_ram", FsMode::HdfsInputsInRam),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_sort(&cfg, mode, 8 * GB)))
        });
    }
    g.finish();
}

fn bench_fig8_wordcount(c: &mut Criterion) {
    let mut cfg = ClusterConfig::default();
    cfg.disk = DeviceProfile::hdd_contended();
    let mut g = c.benchmark_group("fig8_wordcount");
    g.sample_size(10);
    for gb in [2u64, 6] {
        g.bench_function(format!("ignem_{gb}gb"), |b| {
            b.iter(|| black_box(run_wordcount(&cfg, FsMode::Ignem, gb, SimDuration::ZERO)))
        });
        g.bench_function(format!("ignem_plus10s_{gb}gb"), |b| {
            b.iter(|| {
                black_box(run_wordcount(
                    &cfg,
                    FsMode::Ignem,
                    gb,
                    SimDuration::from_secs(10),
                ))
            })
        });
    }
    g.finish();
}

fn bench_fig9_hive(c: &mut Criterion) {
    let cfg = ClusterConfig::default();
    let queries: Vec<_> = fig9_queries().into_iter().take(3).collect();
    let mut g = c.benchmark_group("fig9_hive");
    g.sample_size(10);
    g.bench_function("hdfs", |b| {
        b.iter(|| black_box(run_hive(&cfg, FsMode::Hdfs, &queries)))
    });
    g.bench_function("ignem", |b| {
        b.iter(|| black_box(run_hive(&cfg, FsMode::Ignem, &queries)))
    });
    g.finish();
}

criterion_group!(
    paper,
    bench_fig1_fig2,
    bench_fig3_fig4_google,
    bench_table1_table2_swim,
    bench_ablation_priority,
    bench_table3_sort,
    bench_fig8_wordcount,
    bench_fig9_hive
);
criterion_main!(paper);
