//! Timing benches, one per table/figure of the paper.
//!
//! Each bench measures the wall-clock cost of regenerating the experiment
//! (the simulation itself is the system under test here; the *results* of
//! the experiments are produced by the `report` binary and recorded in
//! `EXPERIMENTS.md`). Workload sizes are scaled down so `cargo bench`
//! completes quickly; the report binary runs the full-size versions.
//!
//! A minimal self-contained harness (`harness = false`) keeps the build
//! free of external crates: the repository must compile fully offline.

use std::hint::black_box;

use ignem_bench::wall_clock;

use ignem_cluster::config::{ClusterConfig, FsMode};
use ignem_cluster::experiment::{run_hive, run_read_micro, run_sort, run_swim, run_wordcount};
use ignem_core::policy::Policy;
use ignem_simcore::rng::SimRng;
use ignem_simcore::time::SimDuration;
use ignem_simcore::units::GB;
use ignem_storage::device::DeviceProfile;
use ignem_workloads::google::{GoogleTrace, GoogleTraceConfig, UtilizationTimelines};
use ignem_workloads::swim::{SwimConfig, SwimTrace};
use ignem_workloads::tpcds::fig9_queries;

const ITERS: u32 = 5;

fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    black_box(f()); // warm-up
    let start = wall_clock();
    for _ in 0..ITERS {
        black_box(f());
    }
    let per_ms = start.elapsed().as_secs_f64() * 1e3 / ITERS as f64;
    println!("{name:<52} {per_ms:>10.3} ms/iter ({ITERS} iters)");
}

fn small_trace() -> SwimTrace {
    let cfg = SwimConfig {
        jobs: 60,
        total_input: 51 * GB,
        ..SwimConfig::default()
    };
    SwimTrace::generate(&cfg, &mut SimRng::new(20180615))
}

fn bench_fig1_fig2() {
    let cfg = ClusterConfig::default();
    bench("fig1_fig2_block_reads/hdd", || {
        run_read_micro(&cfg, FsMode::Hdfs, 12, 4)
    });
    let mut ssd_cfg = cfg.clone();
    ssd_cfg.disk = DeviceProfile::ssd();
    bench("fig1_fig2_block_reads/ssd", || {
        run_read_micro(&ssd_cfg, FsMode::Hdfs, 12, 4)
    });
    bench("fig1_fig2_block_reads/ram", || {
        run_read_micro(&cfg, FsMode::HdfsInputsInRam, 12, 4)
    });
}

fn bench_fig3_fig4_google() {
    let trace_cfg = GoogleTraceConfig {
        jobs: 5_000,
        servers: 50,
        ..GoogleTraceConfig::default()
    };
    bench("fig3_lead_time_analysis", || {
        let t = GoogleTrace::generate(&trace_cfg, &mut SimRng::new(1));
        t.lead_time_sufficiency()
    });
    bench("fig4_utilization_timelines", || {
        let u = UtilizationTimelines::generate(&trace_cfg, &mut SimRng::new(2));
        u.overall_mean()
    });
}

fn bench_table1_table2_swim() {
    let cfg = ClusterConfig::default();
    let trace = small_trace();
    for (name, mode) in [
        ("hdfs", FsMode::Hdfs),
        ("ignem", FsMode::Ignem),
        ("inputs_in_ram", FsMode::HdfsInputsInRam),
    ] {
        bench(&format!("table1_table2_fig5_fig6_fig7_swim/{name}"), || {
            run_swim(&cfg, mode, &trace, None)
        });
    }
}

fn bench_ablation_priority() {
    let cfg = ClusterConfig::default();
    let trace = small_trace();
    bench("ablation_priority_swim/smallest_job_first", || {
        run_swim(&cfg, FsMode::Ignem, &trace, Some(Policy::SmallestJobFirst))
    });
    bench("ablation_priority_swim/fifo", || {
        run_swim(&cfg, FsMode::Ignem, &trace, Some(Policy::Fifo))
    });
}

fn bench_table3_sort() {
    let cfg = ClusterConfig::default();
    for (name, mode) in [
        ("hdfs", FsMode::Hdfs),
        ("ignem", FsMode::Ignem),
        ("inputs_in_ram", FsMode::HdfsInputsInRam),
    ] {
        bench(&format!("table3_sort/{name}"), || {
            run_sort(&cfg, mode, 8 * GB)
        });
    }
}

fn bench_fig8_wordcount() {
    let cfg = ClusterConfig {
        disk: DeviceProfile::hdd_contended(),
        ..ClusterConfig::default()
    };
    for gb in [2u64, 6] {
        bench(&format!("fig8_wordcount/ignem_{gb}gb"), || {
            run_wordcount(&cfg, FsMode::Ignem, gb, SimDuration::ZERO)
        });
        bench(&format!("fig8_wordcount/ignem_plus10s_{gb}gb"), || {
            run_wordcount(&cfg, FsMode::Ignem, gb, SimDuration::from_secs(10))
        });
    }
}

fn bench_fig9_hive() {
    let cfg = ClusterConfig::default();
    let queries: Vec<_> = fig9_queries().into_iter().take(3).collect();
    bench("fig9_hive/hdfs", || run_hive(&cfg, FsMode::Hdfs, &queries));
    bench("fig9_hive/ignem", || {
        run_hive(&cfg, FsMode::Ignem, &queries)
    });
}

fn main() {
    bench_fig1_fig2();
    bench_fig3_fig4_google();
    bench_table1_table2_swim();
    bench_ablation_priority();
    bench_table3_sort();
    bench_fig8_wordcount();
    bench_fig9_hive();
}
