//! P02 / Q01 — interprocedural checks on fault and recovery paths.
//!
//! Both passes walk the call graph from a registry of fault/recovery entry
//! points (fault injection, node failure, restart and re-registration
//! machinery) with a BFS bounded at three call edges — deep enough to cover
//! the helpers those paths lean on, shallow enough that the name-based
//! over-approximation does not drag in the whole workspace.
//!
//! * **P02 (panic reachability)**: flags `.unwrap()` / `.expect(…)`,
//!   `panic!` / `unreachable!` / `todo!` / `unimplemented!`, and indexing
//!   into map-typed fields (`self.tasks[&id]` — panics on a missing key)
//!   inside any reached function. Panics inside `assert!`-family macros are
//!   exempt: an assert *is* the recovery contract. The finding message
//!   carries the call chain from the entry point.
//! * **Q01 (unbounded growth)**: flags `recv.field.push(…)` / `.extend(…)`
//!   in a reached function when the defining file shows no draining
//!   operation (`pop`/`remove`/`clear`/`drain`/`truncate`/`retain`/
//!   `dedup`/`swap_remove`/`split_off`/`take`) or reassignment of that
//!   field anywhere — growth on a fault path with no visible cap.

use crate::lexer::{Tok, Token};
use crate::rules::Violation;
use crate::symbols::{reachable, CallGraph, FileUnit, FnKey, Symbols};

/// Fault/recovery entry points: (file, function name).
pub const ENTRY_POINTS: &[(&str, &str)] = &[
    ("crates/cluster/src/world.rs", "on_inject"),
    ("crates/cluster/src/world.rs", "fail_node"),
    ("crates/cluster/src/world.rs", "kill_plan"),
    ("crates/cluster/src/world.rs", "on_node_restart"),
    ("crates/cluster/src/world.rs", "send_register"),
    ("crates/cluster/src/world.rs", "on_register_retry"),
    ("crates/cluster/src/world.rs", "on_deliver_register"),
    ("crates/cluster/src/world.rs", "on_disk_restore"),
    ("crates/cluster/src/world.rs", "on_node_resume"),
    ("crates/cluster/src/world.rs", "on_partition_heal"),
    ("crates/ignem/src/slave.rs", "fail"),
    ("crates/ignem/src/slave.rs", "on_master_failed"),
    ("crates/ignem/src/slave.rs", "restart"),
    ("crates/ignem/src/master.rs", "fail"),
    ("crates/ignem/src/master.rs", "handle_register"),
];

/// How many call edges the BFS follows from an entry point.
pub const MAX_DEPTH: usize = 3;

const ASSERT_MACROS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

const DRAIN_METHODS: &[&str] = &[
    "pop",
    "remove",
    "clear",
    "drain",
    "truncate",
    "retain",
    "dedup",
    "swap_remove",
    "split_off",
    "take",
];

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn tok_at(toks: &[Token], i: usize) -> Option<&Tok> {
    toks.get(i).map(|t| &t.tok)
}

/// Resolves the entry-point registry against the parsed workspace.
pub fn resolve_entries(units: &[FileUnit]) -> Vec<FnKey> {
    let mut out = Vec::new();
    for (ui, unit) in units.iter().enumerate() {
        for &(file, name) in ENTRY_POINTS {
            if unit.rel != file {
                continue;
            }
            for (fi, f) in unit.parsed.fns.iter().enumerate() {
                if f.name == name && !f.is_test {
                    out.push((ui, fi));
                }
            }
        }
    }
    out
}

/// Runs P02 and Q01 over the workspace.
pub fn run_reach(units: &[FileUnit], syms: &Symbols, graph: &CallGraph) -> Vec<Violation> {
    let entries = resolve_entries(units);
    let chains = reachable(graph, units, &entries, MAX_DEPTH);
    let mut out = Vec::new();
    for (&(ui, fi), chain) in &chains {
        let unit = &units[ui];
        let f = &unit.parsed.fns[fi];
        let Some((start, end)) = f.body else {
            continue;
        };
        let via = chain.join(" → ");
        check_panics(unit, start, end, &via, syms, &mut out);
        check_growth(unit, start, end, &via, &mut out);
    }
    out
}

/// P02 over one function body.
fn check_panics(
    unit: &FileUnit,
    start: usize,
    end: usize,
    via: &str,
    syms: &Symbols,
    out: &mut Vec<Violation>,
) {
    let toks = &unit.lexed.tokens;
    let mut i = start;
    while i < end {
        // Skip assert-family macro bodies wholesale.
        if let Some(id) = ident_at(toks, i) {
            if ASSERT_MACROS.contains(&id)
                && tok_at(toks, i + 1) == Some(&Tok::Other('!'))
                && tok_at(toks, i + 2) == Some(&Tok::OpenParen)
            {
                let mut depth = 0i32;
                let mut j = i + 2;
                while j < end {
                    match tok_at(toks, j) {
                        Some(Tok::OpenParen) => depth += 1,
                        Some(Tok::CloseParen) => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
            if PANIC_MACROS.contains(&id) && tok_at(toks, i + 1) == Some(&Tok::Other('!')) {
                out.push(Violation {
                    rule: "P02",
                    file: unit.rel.clone(),
                    line: toks[i].line,
                    message: format!(
                        "`{id}!` reachable from a fault path ({via}); recover or justify \
                         with an allow"
                    ),
                });
                i += 2;
                continue;
            }
        }
        if tok_at(toks, i) == Some(&Tok::Dot) {
            if let Some(m @ ("unwrap" | "expect")) = ident_at(toks, i + 1) {
                if tok_at(toks, i + 2) == Some(&Tok::OpenParen) {
                    out.push(Violation {
                        rule: "P02",
                        file: unit.rel.clone(),
                        line: toks[i + 1].line,
                        message: format!(
                            "`.{m}()` reachable from a fault path ({via}); recover or \
                             return a typed error"
                        ),
                    });
                }
            }
            // `recv.field[key]` indexing into a map-typed field.
            if let Some(field) = ident_at(toks, i + 1) {
                if syms.map_fields.contains(field)
                    && tok_at(toks, i + 2) == Some(&Tok::OpenBracket)
                    && !index_is_literal(toks, i + 2, end)
                {
                    out.push(Violation {
                        rule: "P02",
                        file: unit.rel.clone(),
                        line: toks[i + 1].line,
                        message: format!(
                            "indexing map field `{field}` panics on a missing key, reachable \
                             from a fault path ({via}); use `.get()` and recover"
                        ),
                    });
                }
            }
        }
        i += 1;
    }
}

/// Whether the bracket group opening at `open` holds a single literal
/// (`v[0]` — a fixed slot, not a key lookup).
fn index_is_literal(toks: &[Token], open: usize, end: usize) -> bool {
    tok_at(toks, open + 1) == Some(&Tok::Literal)
        && open + 2 < end
        && tok_at(toks, open + 2) == Some(&Tok::CloseBracket)
}

/// Q01 over one function body.
fn check_growth(unit: &FileUnit, start: usize, end: usize, via: &str, out: &mut Vec<Violation>) {
    let toks = &unit.lexed.tokens;
    for i in start..end {
        // `recv.field.push(` / `recv.field.extend(`.
        if tok_at(toks, i) != Some(&Tok::Dot) {
            continue;
        }
        let Some(field) = ident_at(toks, i + 1) else {
            continue;
        };
        if tok_at(toks, i + 2) != Some(&Tok::Dot) {
            continue;
        }
        let Some(method @ ("push" | "extend")) = ident_at(toks, i + 3) else {
            continue;
        };
        if tok_at(toks, i + 4) != Some(&Tok::OpenParen) {
            continue;
        }
        if file_drains_field(toks, field) {
            continue;
        }
        out.push(Violation {
            rule: "Q01",
            file: unit.rel.clone(),
            line: toks[i + 1].line,
            message: format!(
                "`.{method}()` grows `{field}` on a fault path ({via}) and this file never \
                 drains it (no pop/remove/clear/drain/truncate/retain/dedup); add a drain \
                 or a cap"
            ),
        });
    }
}

/// Whether the file ever drains, caps, or reassigns `field`.
fn file_drains_field(toks: &[Token], field: &str) -> bool {
    for i in 0..toks.len() {
        if ident_at(toks, i) != Some(field) {
            continue;
        }
        // `field.pop()` etc.
        if tok_at(toks, i + 1) == Some(&Tok::Dot) {
            if let Some(m) = ident_at(toks, i + 2) {
                if DRAIN_METHODS.contains(&m) {
                    return true;
                }
            }
        }
        // `field = …` reassignment (but not `field ==`).
        if tok_at(toks, i + 1) == Some(&Tok::Eq) && tok_at(toks, i + 2) != Some(&Tok::Eq) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;
    use crate::symbols::{build_call_graph, build_symbols};

    fn unit(rel: &str, src: &str) -> FileUnit {
        let lexed = lex(src);
        let parsed = parse(&lexed.tokens);
        FileUnit {
            rel: rel.to_string(),
            lexed,
            parsed,
        }
    }

    fn run(units: &[FileUnit]) -> Vec<Violation> {
        let syms = build_symbols(units);
        let graph = build_call_graph(units, &syms);
        run_reach(units, &syms, &graph)
    }

    #[test]
    fn panic_reachable_through_a_helper_is_flagged_with_chain() {
        let units = vec![
            unit(
                "crates/cluster/src/world.rs",
                r#"
                impl World {
                    fn fail_node(&mut self, n: NodeId) { self.reissue(n); }
                    fn reissue(&mut self, n: NodeId) { helper_lookup(n); }
                }
                "#,
            ),
            unit(
                "crates/compute/src/tracker.rs",
                r#"
                fn helper_lookup(n: NodeId) -> Rec { table.get(&n).expect("known node") }
                "#,
            ),
        ];
        let v = run(&units);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "P02");
        assert_eq!(v[0].file, "crates/compute/src/tracker.rs");
        assert!(v[0].message.contains("fail_node → reissue → helper_lookup"));
    }

    #[test]
    fn asserts_are_exempt_and_unreached_fns_are_ignored() {
        let units = vec![unit(
            "crates/cluster/src/world.rs",
            r#"
            impl World {
                fn fail_node(&mut self, n: NodeId) {
                    assert!(self.alive(n), "caller checked");
                    debug_assert_eq!(self.epoch, expected.unwrap());
                }
                fn unrelated(&self) { x.unwrap(); }
            }
            "#,
        )];
        assert!(run(&units).is_empty());
    }

    #[test]
    fn map_field_indexing_is_flagged_but_literal_slots_are_not() {
        let units = vec![unit(
            "crates/cluster/src/world.rs",
            r#"
            struct World { owners: BTreeMap<u32, u32>, slots: Vec<u32> }
            impl World {
                fn on_inject(&mut self, id: u32) {
                    let a = self.owners[&id];
                    let b = self.slots[0];
                    let c = self.slots[id as usize];
                }
            }
            "#,
        )];
        let v = run(&units);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("owners"));
    }

    #[test]
    fn growth_without_drain_is_q01_and_with_drain_is_clean() {
        let units = vec![unit(
            "crates/cluster/src/world.rs",
            r#"
            impl World {
                fn on_inject(&mut self, n: NodeId) {
                    self.backlog.push(n);
                    self.rerep.push(n);
                }
                fn tick(&mut self) {
                    for x in self.rerep.drain(..) { let _ = x; }
                }
            }
            "#,
        )];
        let v = run(&units);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "Q01");
        assert!(v[0].message.contains("backlog"));
    }

    #[test]
    fn depth_limit_bounds_the_walk() {
        let units = vec![unit(
            "crates/cluster/src/world.rs",
            r#"
            impl World {
                fn on_inject(&mut self) { self.a(); }
                fn a(&mut self) { self.b(); }
                fn b(&mut self) { self.c(); }
                fn c(&mut self) { deep.unwrap(); }
            }
            "#,
        )];
        // c is 3 edges away — included. One more hop would not be.
        let v = run(&units);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("on_inject → a → b → c"));
    }
}
