//! Minimal SARIF 2.1.0 output for CI code-scanning upload.
//!
//! Hand-rolled like the JSON report (no serde): one run, one driver, one
//! result per violation with a physical location. Rule metadata is the
//! deduplicated set of rule ids present in the report.

use std::collections::BTreeSet;

use crate::rules::Violation;

fn esc(src: &str, out: &mut String) {
    for c in src.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders a SARIF 2.1.0 document for `violations`.
pub fn to_sarif(violations: &[Violation]) -> String {
    let rules: BTreeSet<&str> = violations.iter().map(|v| v.rule).collect();
    let mut s = String::from(
        "{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/\
         Schemata/sarif-schema-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":\
         {\"driver\":{\"name\":\"ignem-analyze\",\"informationUri\":\
         \"https://example.invalid/ignem\",\"rules\":[",
    );
    for (i, r) in rules.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"id\":\"");
        s.push_str(r);
        s.push_str("\"}");
    }
    s.push_str("]}},\"results\":[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"ruleId\":\"");
        s.push_str(v.rule);
        s.push_str("\",\"level\":\"error\",\"message\":{\"text\":\"");
        esc(&v.message, &mut s);
        s.push_str("\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"");
        esc(&v.file, &mut s);
        s.push_str("\"},\"region\":{\"startLine\":");
        s.push_str(&v.line.to_string());
        s.push_str("}}}]}");
    }
    s.push_str("]}]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sarif_shape_is_stable() {
        let v = vec![Violation {
            rule: "D10",
            file: "crates/x/src/a.rs".into(),
            line: 7,
            message: "tainted \"value\"".into(),
        }];
        let s = to_sarif(&v);
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("\"ruleId\":\"D10\""));
        assert!(s.contains("\"startLine\":7"));
        assert!(s.contains("tainted \\\"value\\\""));
        assert!(s.contains("{\"id\":\"D10\"}"));
    }

    #[test]
    fn empty_report_is_valid_sarif() {
        let s = to_sarif(&[]);
        assert!(s.contains("\"results\":[]"));
    }
}
