//! The determinism rule matchers.
//!
//! Every rule works on the token stream from [`crate::lexer`] with
//! `#[cfg(test)]` / `#[test]` items stripped first: test code may use
//! wall clocks, unwraps and hash iteration freely. Rules are scoped per
//! file by [`scope_for`] — the simulation crates get the determinism
//! rules, the bench harness gets D01 only, and everything else (bins,
//! the linter itself) gets nothing.

use crate::lexer::{Directive, Lexed, Tok, Token};

/// Crates whose code runs inside the deterministic simulation.
pub const SIM_CRATES: &[&str] = &[
    "simcore",
    "netsim",
    "storage",
    "dfs",
    "ignem",
    "compute",
    "cluster",
    "workloads",
];

/// Files on RPC/fault/migration paths where panics are banned (rule P01).
pub const P01_FILES: &[&str] = &[
    "crates/netsim/src/rpc.rs",
    "crates/ignem/src/slave.rs",
    "crates/ignem/src/master.rs",
    "crates/cluster/src/chaos.rs",
];

/// Map/set methods whose call on a hash container means iteration (D02).
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id: `D01`, `D02`, `D03`, `P01`, `F01`, `T01`, or `A00`.
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// Which rules apply to a file.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scope {
    /// No wall-clock reads (`Instant::now`, `SystemTime`).
    pub d01: bool,
    /// No iteration over `HashMap`/`HashSet`.
    pub d02: bool,
    /// No `std::env`, `std::process`, or ambient randomness.
    pub d03: bool,
    /// No `unwrap`/`expect` on RPC/fault/migration paths.
    pub p01: bool,
    /// No `partial_cmp(..).unwrap()`-style float ordering.
    pub f01: bool,
    /// No `println!`/`eprintln!` in library code; output goes through
    /// telemetry sinks, bins, or the bench reporter.
    pub t01: bool,
    /// Determinism taint flow analysis (sources → sinks), plus the bench
    /// crate's structural wall-clock boundary check.
    pub d10: bool,
}

impl Scope {
    fn any(&self) -> bool {
        self.d01 || self.d02 || self.d03 || self.p01 || self.f01 || self.t01
    }
}

/// Computes the rule scope for a workspace-relative path.
pub fn scope_for(rel: &str) -> Scope {
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    let sim = SIM_CRATES.contains(&crate_name);
    Scope {
        // The bench harness's wall-clock reads are policed by D10's
        // structural boundary (only `timing.rs::wall_clock` may read raw),
        // so D01's blanket ban covers the simulation crates only.
        d01: sim,
        d02: sim,
        d03: sim && rel != "crates/simcore/src/rng.rs",
        p01: P01_FILES.contains(&rel),
        f01: sim,
        // `trace.rs` hosts `StderrSink`, the one sanctioned place library
        // code may write to stderr (opted into explicitly by the caller).
        t01: sim && rel != "crates/simcore/src/trace.rs",
        d10: sim || crate_name == "bench",
    }
}

/// Runs every applicable rule over one lexed file, applying allow
/// directives and reporting malformed ones.
pub fn check_file(rel: &str, lexed: &Lexed) -> Vec<Violation> {
    let scope = scope_for(rel);
    let mut out = Vec::new();
    // Malformed allows are reported everywhere, even out of scope: a
    // suppression that silently fails to parse is worse than a violation.
    for d in &lexed.directives {
        if let Directive::Malformed { line, detail } = d {
            out.push(Violation {
                rule: "A00",
                file: rel.to_string(),
                line: *line,
                message: format!("malformed lint directive: {detail}"),
            });
        }
    }
    if scope.any() {
        let toks = strip_test_items(&lexed.tokens);
        let mut raw = Vec::new();
        if scope.d01 {
            rule_d01(rel, &toks, &mut raw);
        }
        if scope.d02 {
            rule_d02(rel, &toks, &mut raw);
        }
        if scope.d03 {
            rule_d03(rel, &toks, &mut raw);
        }
        if scope.p01 {
            rule_p01(rel, &toks, &mut raw);
        }
        if scope.f01 {
            rule_f01(rel, &toks, &mut raw);
        }
        if scope.t01 {
            rule_t01(rel, &toks, &mut raw);
        }
        // An allow suppresses a same-rule violation on its own line
        // (trailing comment) or the line directly below (comment above).
        raw.retain(|v| {
            !lexed.directives.iter().any(|d| match d {
                Directive::Allow { line, rule, .. } => {
                    rule == v.rule && (*line == v.line || *line + 1 == v.line)
                }
                Directive::Malformed { .. } => false,
            })
        });
        out.extend(raw);
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Returns the token stream with `#[cfg(test)]` / `#[test]` items removed.
///
/// An "item" is everything from the attribute to either the matching close
/// brace of its first open brace, or the first top-level `;` if no brace
/// comes first (e.g. `#[cfg(test)] mod tests;`).
fn strip_test_items(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].tok == Tok::Pound && is_test_attr(tokens, i) {
            i = skip_attributed_item(tokens, i);
        } else {
            out.push(tokens[i].clone());
            i += 1;
        }
    }
    out
}

/// Whether the attribute starting at `i` (a `#`) is `#[cfg(test)]` or
/// `#[test]`.
fn is_test_attr(tokens: &[Token], i: usize) -> bool {
    let ident =
        |k: usize, s: &str| matches!(&tokens.get(k).map(|t| &t.tok), Some(Tok::Ident(n)) if n == s);
    let tok = |k: usize, t: Tok| tokens.get(k).map(|x| x.tok.clone()) == Some(t);
    if !tok(i + 1, Tok::OpenBracket) {
        return false;
    }
    (ident(i + 2, "test") && tok(i + 3, Tok::CloseBracket))
        || (ident(i + 2, "cfg")
            && tok(i + 3, Tok::OpenParen)
            && ident(i + 4, "test")
            && tok(i + 5, Tok::CloseParen)
            && tok(i + 6, Tok::CloseBracket))
}

/// Skips from a test attribute's `#` past the end of the item it decorates
/// (including any further attributes in between).
fn skip_attributed_item(tokens: &[Token], mut i: usize) -> usize {
    // Skip attributes: `#` `[` ... matching `]`, repeatedly.
    while i < tokens.len() && tokens[i].tok == Tok::Pound {
        i += 1; // `#`
        if tokens.get(i).map(|t| &t.tok) == Some(&Tok::OpenBracket) {
            let mut depth = 0i32;
            while i < tokens.len() {
                match tokens[i].tok {
                    Tok::OpenBracket => depth += 1,
                    Tok::CloseBracket => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
    }
    // Skip the item body: to the matching `}` of the first `{`, or to the
    // first `;` seen before any `{`.
    let mut depth = 0i32;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::OpenBrace => depth += 1,
            Tok::CloseBrace => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            Tok::Other(';') if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn tok_at(tokens: &[Token], i: usize) -> Option<&Tok> {
    tokens.get(i).map(|t| &t.tok)
}

/// D01: wall-clock reads (`Instant::now`, any `SystemTime` use).
fn rule_d01(rel: &str, toks: &[Token], out: &mut Vec<Violation>) {
    for i in 0..toks.len() {
        if ident_at(toks, i) == Some("Instant")
            && tok_at(toks, i + 1) == Some(&Tok::PathSep)
            && ident_at(toks, i + 2) == Some("now")
        {
            out.push(Violation {
                rule: "D01",
                file: rel.to_string(),
                line: toks[i].line,
                message: "wall-clock read `Instant::now` in simulation code; use SimTime"
                    .to_string(),
            });
        }
        if ident_at(toks, i) == Some("SystemTime") {
            out.push(Violation {
                rule: "D01",
                file: rel.to_string(),
                line: toks[i].line,
                message: "wall-clock type `SystemTime` in simulation code; use SimTime".to_string(),
            });
        }
    }
}

/// D02: iteration over `HashMap`/`HashSet`.
///
/// Pass A collects names declared or initialised as hash containers (let
/// bindings, struct fields, fn params); pass B flags iteration over those
/// names, either via an iterating method call or a `for … in` loop.
///
/// Ordered containers are exempt by construction: only names bound to
/// `HashMap`/`HashSet` enter pass A, so `BTreeMap`/`BTreeSet` — and the
/// dense `ignem_simcore::idmap::{IdMap, IdSet}`, which iterate in
/// ascending key order — may be iterated freely.
fn rule_d02(rel: &str, toks: &[Token], out: &mut Vec<Violation>) {
    let mut names: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        let Some(id) = ident_at(toks, i) else {
            continue;
        };
        if id != "HashMap" && id != "HashSet" {
            continue;
        }
        // Walk back over a `std :: collections ::` path prefix.
        let mut j = i;
        while j >= 2
            && tok_at(toks, j - 1) == Some(&Tok::PathSep)
            && ident_at(toks, j - 2).is_some()
        {
            j -= 2;
        }
        if j == 0 {
            continue;
        }
        let mut k = j - 1;
        // `name: &HashMap<..>` (fn params) — step over the reference.
        if tok_at(toks, k) == Some(&Tok::Amp) && k > 0 {
            k -= 1;
        }
        match tok_at(toks, k) {
            Some(Tok::Colon) | Some(Tok::Eq) if k > 0 => {
                if let Some(name) = ident_at(toks, k - 1) {
                    if !names.iter().any(|n| n == name) {
                        names.push(name.to_string());
                    }
                }
            }
            _ => {}
        }
    }
    for i in 0..toks.len() {
        let Some(id) = ident_at(toks, i) else {
            continue;
        };
        // `name.iter()` and friends.
        if names.iter().any(|n| n == id)
            && tok_at(toks, i + 1) == Some(&Tok::Dot)
            && matches!(ident_at(toks, i + 2), Some(m) if ITER_METHODS.contains(&m))
            && tok_at(toks, i + 3) == Some(&Tok::OpenParen)
        {
            let method = ident_at(toks, i + 2).unwrap_or("iter");
            out.push(Violation {
                rule: "D02",
                file: rel.to_string(),
                line: toks[i].line,
                message: format!(
                    "iteration `.{method}()` over hash container `{id}`; use an ordered \
                     container (IdMap/IdSet/BTreeMap/BTreeSet) or sort first"
                ),
            });
        }
        // `for pat in [&[mut]] place.chain {` where the chain's last
        // segment is a known hash container.
        if id == "in" {
            let mut k = i + 1;
            if tok_at(toks, k) == Some(&Tok::Amp) {
                k += 1;
            }
            if ident_at(toks, k) == Some("mut") {
                k += 1;
            }
            let Some(mut last) = ident_at(toks, k) else {
                continue;
            };
            k += 1;
            while tok_at(toks, k) == Some(&Tok::Dot) && ident_at(toks, k + 1).is_some() {
                last = ident_at(toks, k + 1).unwrap_or(last);
                k += 2;
            }
            if tok_at(toks, k) == Some(&Tok::OpenBrace) && names.iter().any(|n| n == last) {
                out.push(Violation {
                    rule: "D02",
                    file: rel.to_string(),
                    line: toks[i].line,
                    message: format!(
                        "`for … in` over hash container `{last}`; use an ordered container \
                         (IdMap/IdSet/BTreeMap/BTreeSet) or sort first"
                    ),
                });
            }
        }
    }
}

/// D03: ambient environment and randomness.
fn rule_d03(rel: &str, toks: &[Token], out: &mut Vec<Violation>) {
    for i in 0..toks.len() {
        if ident_at(toks, i) == Some("std") && tok_at(toks, i + 1) == Some(&Tok::PathSep) {
            if let Some(m @ ("env" | "process")) = ident_at(toks, i + 2) {
                out.push(Violation {
                    rule: "D03",
                    file: rel.to_string(),
                    line: toks[i].line,
                    message: format!(
                        "`std::{m}` in simulation code; configuration and process control \
                         belong in bins"
                    ),
                });
            }
        }
        if let Some(id @ ("thread_rng" | "from_entropy" | "RandomState")) = ident_at(toks, i) {
            out.push(Violation {
                rule: "D03",
                file: rel.to_string(),
                line: toks[i].line,
                message: format!("ambient randomness `{id}`; draw from simcore::rng::SimRng"),
            });
        }
    }
}

/// P01: `unwrap`/`expect` on RPC/fault/migration paths.
fn rule_p01(rel: &str, toks: &[Token], out: &mut Vec<Violation>) {
    for i in 0..toks.len() {
        if tok_at(toks, i) == Some(&Tok::Dot) {
            if let Some(m @ ("unwrap" | "expect")) = ident_at(toks, i + 1) {
                if tok_at(toks, i + 2) == Some(&Tok::OpenParen) {
                    out.push(Violation {
                        rule: "P01",
                        file: rel.to_string(),
                        line: toks[i + 1].line,
                        message: format!(
                            "`.{m}()` on a fault path; recover, return a typed error, or \
                             justify with an allow"
                        ),
                    });
                }
            }
        }
    }
}

/// F01: `partial_cmp(..)` immediately unwrapped — a NaN panic waiting in
/// ordering-sensitive code. Use `f64::total_cmp`.
fn rule_f01(rel: &str, toks: &[Token], out: &mut Vec<Violation>) {
    for i in 0..toks.len() {
        if tok_at(toks, i) == Some(&Tok::Dot)
            && ident_at(toks, i + 1) == Some("partial_cmp")
            && tok_at(toks, i + 2) == Some(&Tok::OpenParen)
        {
            // Skip the balanced argument list.
            let mut depth = 0i32;
            let mut j = i + 2;
            while j < toks.len() {
                match toks[j].tok {
                    Tok::OpenParen => depth += 1,
                    Tok::CloseParen => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if tok_at(toks, j + 1) == Some(&Tok::Dot)
                && matches!(ident_at(toks, j + 2), Some("unwrap" | "expect"))
            {
                out.push(Violation {
                    rule: "F01",
                    file: rel.to_string(),
                    line: toks[i + 1].line,
                    message: "`partial_cmp(..).unwrap()` panics on NaN; use `f64::total_cmp`"
                        .to_string(),
                });
            }
        }
    }
}

/// T01: `println!`/`eprintln!` (and their no-newline forms) in library
/// code. Simulation output must flow through telemetry sinks or the
/// report layer so that runs stay machine-auditable and quiet by
/// default; ad-hoc prints are debugging residue.
fn rule_t01(rel: &str, toks: &[Token], out: &mut Vec<Violation>) {
    for i in 0..toks.len() {
        if let Some(m @ ("println" | "eprintln" | "print" | "eprint")) = ident_at(toks, i) {
            if tok_at(toks, i + 1) == Some(&Tok::Other('!')) {
                out.push(Violation {
                    rule: "T01",
                    file: rel.to_string(),
                    line: toks[i].line,
                    message: format!(
                        "`{m}!` in library code; emit through a telemetry sink or \
                         return data for the report layer to print"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rel: &str, src: &str) -> Vec<Violation> {
        check_file(rel, &lex(src))
    }

    #[test]
    fn scope_routing() {
        assert!(scope_for("crates/simcore/src/event.rs").d01);
        assert!(!scope_for("crates/simcore/src/rng.rs").d03);
        assert!(scope_for("crates/ignem/src/master.rs").p01);
        assert!(!scope_for("crates/ignem/src/namenode.rs").p01);
        // Bench wall-clock discipline moved from D01 to the D10 boundary.
        assert!(!scope_for("crates/bench/benches/substrates.rs").d01);
        assert!(scope_for("crates/bench/benches/substrates.rs").d10);
        assert!(scope_for("crates/bench/src/timing.rs").d10);
        assert!(scope_for("crates/simcore/src/event.rs").d10);
        assert!(!scope_for("crates/bench/src/report.rs").d02);
        assert!(!scope_for("crates/lint/src/lib.rs").any());
        assert!(!scope_for("crates/lint/src/lib.rs").d10);
        assert!(scope_for("crates/cluster/src/world.rs").t01);
        assert!(!scope_for("crates/simcore/src/trace.rs").t01);
        assert!(!scope_for("crates/bench/src/report.rs").t01);
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\n";
        assert!(run("crates/ignem/src/master.rs", src).is_empty());
    }

    #[test]
    fn trailing_and_preceding_allows_suppress() {
        let src = "fn f() {\n\
                   let t = Instant::now(); // lint: allow(D01, reason = \"why\")\n\
                   // lint: allow(D01, reason = \"why\")\n\
                   let u = Instant::now();\n\
                   }\n";
        assert!(run("crates/simcore/src/time.rs", src).is_empty());
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let src = "// lint: allow(P01, reason = \"why\")\nlet t = Instant::now();\n";
        let v = run("crates/simcore/src/time.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "D01");
    }

    #[test]
    fn ord_boilerplate_is_not_f01() {
        let src = "impl PartialOrd for E {\n\
                   fn partial_cmp(&self, other: &Self) -> Option<Ordering> {\n\
                   Some(self.cmp(other))\n\
                   }\n\
                   }\n";
        assert!(run("crates/simcore/src/event.rs", src).is_empty());
    }
}
