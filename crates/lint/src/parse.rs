//! An item-level Rust parser over the [`crate::lexer`] token stream.
//!
//! This is not a full grammar — it recovers exactly the structure the
//! analysis passes need: function definitions (name, owner type, params,
//! body token range), enum definitions (variants with lines), impl blocks,
//! and whether each item sits under `#[cfg(test)]` / `#[test]`. Everything
//! it does not understand it skips with balanced-delimiter recovery, so a
//! construct outside the recognized subset degrades the analysis (a
//! function not parsed is a function not checked) rather than corrupting
//! it. The known false-negative classes are documented in DESIGN.md §14.

use crate::lexer::{Tok, Token};

/// A parsed function (free function, impl method, or trait default method).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// The `impl`/`trait` self-type owning the method, if any.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the item (or an enclosing item) is test-only.
    pub is_test: bool,
    /// Parameter names in declaration order (`self` excluded).
    pub params: Vec<String>,
    /// Whether the signature declares a return type.
    pub has_ret: bool,
    /// Body token range `[start, end)` into the file's token stream, or
    /// `None` for bodyless signatures (trait methods, extern decls).
    pub body: Option<(usize, usize)>,
}

/// One enum variant: name and 1-based definition line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    /// The variant's name.
    pub name: String,
    /// 1-based line of the variant identifier.
    pub line: u32,
}

/// A parsed enum definition.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// The enum's name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Whether the enum is test-only.
    pub is_test: bool,
    /// The variants in declaration order.
    pub variants: Vec<Variant>,
}

/// A parsed struct definition (field names feed the growth/panic passes).
#[derive(Debug, Clone)]
pub struct StructDef {
    /// The struct's name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Named fields as `(name, last type-path segment)` pairs, e.g.
    /// `("tasks", "BTreeMap")`. Tuple structs have no entries.
    pub fields: Vec<(String, String)>,
}

/// Everything parsed from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All function definitions, in source order (impl methods included).
    pub fns: Vec<FnDef>,
    /// All enum definitions.
    pub enums: Vec<EnumDef>,
    /// All struct definitions.
    pub structs: Vec<StructDef>,
}

impl ParsedFile {
    /// Looks up an enum by name.
    pub fn enum_named(&self, name: &str) -> Option<&EnumDef> {
        self.enums.iter().find(|e| e.name == name)
    }
}

/// Parses a lexed token stream into items.
pub fn parse(tokens: &[Token]) -> ParsedFile {
    let mut out = ParsedFile::default();
    parse_items(tokens, 0, tokens.len(), false, None, &mut out);
    out
}

fn tok_at(tokens: &[Token], i: usize) -> Option<&Tok> {
    tokens.get(i).map(|t| &t.tok)
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tok_at(tokens, i) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Skips a balanced delimiter run starting at `i` (which must sit on the
/// opening delimiter); returns the index just past the matching closer.
/// Only the *same* delimiter kind participates in the balance — Rust
/// guarantees brackets of different kinds nest properly, so this is safe.
fn skip_balanced(tokens: &[Token], i: usize, open: &Tok, close: &Tok) -> usize {
    debug_assert_eq!(tok_at(tokens, i), Some(open));
    let mut depth = 0i32;
    let mut j = i;
    while j < tokens.len() {
        let t = &tokens[j].tok;
        if t == open {
            depth += 1;
        } else if t == close {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Skips a generics list starting at `<`. `>` tokens that are part of a
/// `->` arrow do not close the list (e.g. `fn f<F: Fn() -> u64>()`).
fn skip_generics(tokens: &[Token], i: usize) -> usize {
    debug_assert_eq!(tok_at(tokens, i), Some(&Tok::Other('<')));
    let mut depth = 0i32;
    let mut j = i;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Other('<') => depth += 1,
            Tok::Other('>') => {
                let arrow = j > 0 && tokens[j - 1].tok == Tok::Other('-');
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Whether the attribute starting at `i` (a `#`) marks test-only code.
fn is_test_attr(tokens: &[Token], i: usize) -> bool {
    let outer = tok_at(tokens, i + 1) == Some(&Tok::OpenBracket);
    if !outer {
        return false;
    }
    (ident_at(tokens, i + 2) == Some("test") && tok_at(tokens, i + 3) == Some(&Tok::CloseBracket))
        || (ident_at(tokens, i + 2) == Some("cfg")
            && tok_at(tokens, i + 3) == Some(&Tok::OpenParen)
            && ident_at(tokens, i + 4) == Some("test")
            && tok_at(tokens, i + 5) == Some(&Tok::CloseParen)
            && tok_at(tokens, i + 6) == Some(&Tok::CloseBracket))
}

/// Parses items in `tokens[i..end]`, appending to `out`.
fn parse_items(
    tokens: &[Token],
    mut i: usize,
    end: usize,
    in_test: bool,
    owner: Option<&str>,
    out: &mut ParsedFile,
) {
    while i < end {
        // Attributes: accumulate test-ness, then fall through to the item.
        let mut item_test = in_test;
        while tok_at(tokens, i) == Some(&Tok::Pound) {
            if is_test_attr(tokens, i) {
                item_test = true;
            }
            // `#[...]` or `#![...]`.
            let mut j = i + 1;
            if tok_at(tokens, j) == Some(&Tok::Other('!')) {
                j += 1;
            }
            if tok_at(tokens, j) == Some(&Tok::OpenBracket) {
                i = skip_balanced(tokens, j, &Tok::OpenBracket, &Tok::CloseBracket);
            } else {
                i = j;
            }
        }
        if i >= end {
            break;
        }
        let Some(word) = ident_at(tokens, i) else {
            // Stray punctuation at item level (macro invocation bodies,
            // `;`, …): skip delimiters balanced, everything else singly.
            i = match tok_at(tokens, i) {
                Some(Tok::OpenBrace) => skip_balanced(tokens, i, &Tok::OpenBrace, &Tok::CloseBrace),
                Some(Tok::OpenParen) => skip_balanced(tokens, i, &Tok::OpenParen, &Tok::CloseParen),
                Some(Tok::OpenBracket) => {
                    skip_balanced(tokens, i, &Tok::OpenBracket, &Tok::CloseBracket)
                }
                _ => i + 1,
            };
            continue;
        };
        match word {
            // Modifiers in front of `fn` / `impl` / `trait`.
            "pub" => {
                i += 1;
                if tok_at(tokens, i) == Some(&Tok::OpenParen) {
                    i = skip_balanced(tokens, i, &Tok::OpenParen, &Tok::CloseParen);
                }
            }
            "unsafe" | "async" | "const" | "default" | "extern"
                if next_decl_follows(tokens, i, end) =>
            {
                // `const` here only as a fn qualifier (`const fn`); the
                // `const NAME: …` item form is handled below because no
                // declaration keyword follows.
                i += 1;
                if word == "extern" && tok_at(tokens, i) == Some(&Tok::Literal) {
                    i += 1; // the ABI string in `extern "C" fn`
                }
            }
            "fn" => {
                i = parse_fn(tokens, i, item_test, owner, out);
            }
            "enum" => {
                i = parse_enum(tokens, i, item_test, out);
            }
            "struct" | "union" => {
                i = parse_struct(tokens, i, out);
            }
            "impl" => {
                i = parse_impl(tokens, i, end, item_test, out);
            }
            "trait" => {
                // `trait Name … { items }` — default methods have bodies.
                let name = ident_at(tokens, i + 1).unwrap_or("").to_string();
                let mut j = i + 2;
                while j < end && tok_at(tokens, j) != Some(&Tok::OpenBrace) {
                    if tok_at(tokens, j) == Some(&Tok::Other(';')) {
                        break;
                    }
                    j += 1;
                }
                if tok_at(tokens, j) == Some(&Tok::OpenBrace) {
                    let body_end = skip_balanced(tokens, j, &Tok::OpenBrace, &Tok::CloseBrace);
                    parse_items(tokens, j + 1, body_end - 1, item_test, Some(&name), out);
                    i = body_end;
                } else {
                    i = j + 1;
                }
            }
            "mod" => {
                let mut j = i + 2; // past `mod name`
                match tok_at(tokens, j) {
                    Some(Tok::OpenBrace) => {
                        let body_end = skip_balanced(tokens, j, &Tok::OpenBrace, &Tok::CloseBrace);
                        parse_items(tokens, j + 1, body_end - 1, item_test, owner, out);
                        i = body_end;
                    }
                    _ => {
                        while j < end && tok_at(tokens, j) != Some(&Tok::Other(';')) {
                            j += 1;
                        }
                        i = j + 1;
                    }
                }
            }
            "macro_rules" => {
                // `macro_rules! name { … }`.
                let mut j = i;
                while j < end && tok_at(tokens, j) != Some(&Tok::OpenBrace) {
                    j += 1;
                }
                i = if j < end {
                    skip_balanced(tokens, j, &Tok::OpenBrace, &Tok::CloseBrace)
                } else {
                    j
                };
            }
            _ => {
                // `use`, `const NAME`, `static`, `type`, macro invocations,
                // extern blocks without a following decl, …: skip to the
                // terminating `;`, or through one balanced brace block if a
                // `{` comes first (`use a::{b, c};` braces are balanced on
                // the way).
                let mut j = i;
                while j < end {
                    match tok_at(tokens, j) {
                        Some(Tok::Other(';')) => {
                            j += 1;
                            break;
                        }
                        Some(Tok::OpenBrace) => {
                            j = skip_balanced(tokens, j, &Tok::OpenBrace, &Tok::CloseBrace);
                            // `use a::{…};` still ends with `;`; a macro
                            // `foo! { … }` ends at the brace.
                            if tok_at(tokens, j) == Some(&Tok::Other(';')) {
                                j += 1;
                            }
                            break;
                        }
                        None => break,
                        _ => j += 1,
                    }
                }
                i = j.max(i + 1);
            }
        }
    }
}

/// Whether a declaration keyword follows the modifier at `i` close enough
/// to treat `tokens[i]` as a qualifier rather than an item in itself.
fn next_decl_follows(tokens: &[Token], i: usize, end: usize) -> bool {
    for j in (i + 1)..(i + 3).min(end) {
        if let Some(w) = ident_at(tokens, j) {
            if matches!(w, "fn" | "impl" | "trait" | "unsafe" | "extern") {
                return true;
            }
        }
        if tok_at(tokens, j) == Some(&Tok::Literal) {
            continue; // `extern "C" fn`
        }
    }
    false
}

/// Parses `fn name<…>(params) -> Ret where … { body }` starting at `fn`.
/// Returns the index just past the item.
fn parse_fn(
    tokens: &[Token],
    i: usize,
    is_test: bool,
    owner: Option<&str>,
    out: &mut ParsedFile,
) -> usize {
    let line = tokens[i].line;
    let Some(name) = ident_at(tokens, i + 1) else {
        return i + 1;
    };
    let name = name.to_string();
    let mut j = i + 2;
    if tok_at(tokens, j) == Some(&Tok::Other('<')) {
        j = skip_generics(tokens, j);
    }
    // Parameters.
    let mut params = Vec::new();
    if tok_at(tokens, j) == Some(&Tok::OpenParen) {
        let close = skip_balanced(tokens, j, &Tok::OpenParen, &Tok::CloseParen);
        let mut depth = 0i32;
        let mut k = j;
        while k < close {
            match tok_at(tokens, k) {
                Some(Tok::OpenParen) => depth += 1,
                Some(Tok::CloseParen) => depth -= 1,
                Some(Tok::Colon) if depth == 1 => {
                    // `name:` at top level of the list; closures/types keep
                    // their colons at deeper paren depth or after generics.
                    if let Some(p) = ident_at(tokens, k - 1) {
                        if p != "self" {
                            params.push(p.to_string());
                        }
                    }
                }
                _ => {}
            }
            k += 1;
        }
        j = close;
    }
    // Return type and where clause: scan to the body `{` or a `;`.
    let mut has_ret = false;
    while j < tokens.len() {
        match tok_at(tokens, j) {
            Some(Tok::Other('>')) if j > 0 && tokens[j - 1].tok == Tok::Other('-') => {
                has_ret = true;
                j += 1;
            }
            Some(Tok::OpenBrace) | Some(Tok::Other(';')) => break,
            // Generic arguments in the return type (`Option<(u32, &E)>`)
            // may contain braces never — but closures in where-bounds may:
            // none appear in this workspace's subset.
            Some(Tok::Other('<')) => j = skip_generics(tokens, j),
            _ => j += 1,
        }
    }
    let body = if tok_at(tokens, j) == Some(&Tok::OpenBrace) {
        let end = skip_balanced(tokens, j, &Tok::OpenBrace, &Tok::CloseBrace);
        let r = Some((j + 1, end - 1));
        j = end;
        r
    } else {
        j += 1; // past `;`
        None
    };
    out.fns.push(FnDef {
        name,
        owner: owner.map(|s| s.to_string()),
        line,
        is_test,
        params,
        has_ret,
        body,
    });
    j
}

/// Parses `impl<…> [Trait for] Type { items }` starting at `impl`; the
/// owner recorded for methods is the self-type's leaf identifier (the last
/// path segment before its generic arguments).
fn parse_impl(
    tokens: &[Token],
    i: usize,
    end: usize,
    is_test: bool,
    out: &mut ParsedFile,
) -> usize {
    let mut j = i + 1;
    if tok_at(tokens, j) == Some(&Tok::Other('<')) {
        j = skip_generics(tokens, j);
    }
    // Scan the header up to the body `{`, remembering the last identifier
    // seen overall and the last seen after a `for` (trait impls name the
    // self type there). Generic argument lists are skipped so `IdMap<K, V>`
    // yields `IdMap`, not `V`.
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    let mut in_where = false;
    while j < end {
        match tok_at(tokens, j) {
            Some(Tok::OpenBrace) | Some(Tok::Other(';')) => break,
            Some(Tok::Other('<')) => {
                j = skip_generics(tokens, j);
                continue;
            }
            Some(Tok::Ident(s)) if !in_where => {
                if s == "for" {
                    saw_for = true;
                } else if s == "where" {
                    // Bound idents must not override the self type.
                    in_where = true;
                } else if s != "dyn" && s != "mut" {
                    // Later path segments override earlier ones, so
                    // `std :: ops :: Index` yields the leaf `Index`.
                    if saw_for {
                        after_for = Some(s.clone());
                    } else {
                        last_ident = Some(s.clone());
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    let owner = after_for.or(last_ident);
    if tok_at(tokens, j) != Some(&Tok::OpenBrace) {
        return j + 1;
    }
    let body_end = skip_balanced(tokens, j, &Tok::OpenBrace, &Tok::CloseBrace);
    parse_items(tokens, j + 1, body_end - 1, is_test, owner.as_deref(), out);
    body_end
}

/// Parses `enum Name<…> { V1, V2(..), V3 { .. } }` starting at `enum`.
fn parse_enum(tokens: &[Token], i: usize, is_test: bool, out: &mut ParsedFile) -> usize {
    let line = tokens[i].line;
    let Some(name) = ident_at(tokens, i + 1) else {
        return i + 1;
    };
    let name = name.to_string();
    let mut j = i + 2;
    if tok_at(tokens, j) == Some(&Tok::Other('<')) {
        j = skip_generics(tokens, j);
    }
    while j < tokens.len()
        && tok_at(tokens, j) != Some(&Tok::OpenBrace)
        && tok_at(tokens, j) != Some(&Tok::Other(';'))
    {
        j += 1; // where clause
    }
    if tok_at(tokens, j) != Some(&Tok::OpenBrace) {
        return j + 1;
    }
    let end = skip_balanced(tokens, j, &Tok::OpenBrace, &Tok::CloseBrace);
    let mut variants = Vec::new();
    let mut k = j + 1;
    while k < end - 1 {
        match tok_at(tokens, k) {
            Some(Tok::Pound) => {
                // Variant attribute.
                let mut m = k + 1;
                if tok_at(tokens, m) == Some(&Tok::OpenBracket) {
                    m = skip_balanced(tokens, m, &Tok::OpenBracket, &Tok::CloseBracket);
                }
                k = m;
            }
            Some(Tok::Ident(_)) => {
                let vname = ident_at(tokens, k).unwrap_or("").to_string();
                let vline = tokens[k].line;
                let mut m = k + 1;
                match tok_at(tokens, m) {
                    Some(Tok::OpenParen) => {
                        m = skip_balanced(tokens, m, &Tok::OpenParen, &Tok::CloseParen);
                    }
                    Some(Tok::OpenBrace) => {
                        m = skip_balanced(tokens, m, &Tok::OpenBrace, &Tok::CloseBrace);
                    }
                    _ => {}
                }
                // Discriminant `= expr` runs to the next top-level comma.
                while m < end - 1 && tok_at(tokens, m) != Some(&Tok::Other(',')) {
                    m = match tok_at(tokens, m) {
                        Some(Tok::OpenParen) => {
                            skip_balanced(tokens, m, &Tok::OpenParen, &Tok::CloseParen)
                        }
                        Some(Tok::OpenBrace) => {
                            skip_balanced(tokens, m, &Tok::OpenBrace, &Tok::CloseBrace)
                        }
                        _ => m + 1,
                    };
                }
                variants.push(Variant {
                    name: vname,
                    line: vline,
                });
                k = m + 1; // past the comma
            }
            _ => k += 1,
        }
    }
    out.enums.push(EnumDef {
        name,
        line,
        is_test,
        variants,
    });
    end
}

/// Parses `struct Name { field: Type, … }` (or tuple/unit struct) starting
/// at `struct`.
fn parse_struct(tokens: &[Token], i: usize, out: &mut ParsedFile) -> usize {
    let line = tokens[i].line;
    let Some(name) = ident_at(tokens, i + 1) else {
        return i + 1;
    };
    let name = name.to_string();
    let mut j = i + 2;
    if tok_at(tokens, j) == Some(&Tok::Other('<')) {
        j = skip_generics(tokens, j);
    }
    // Tuple struct `struct X(u32);` or unit `struct X;`.
    if tok_at(tokens, j) == Some(&Tok::OpenParen) {
        j = skip_balanced(tokens, j, &Tok::OpenParen, &Tok::CloseParen);
        if tok_at(tokens, j) == Some(&Tok::Other(';')) {
            j += 1;
        }
        out.structs.push(StructDef {
            name,
            line,
            fields: Vec::new(),
        });
        return j;
    }
    while j < tokens.len()
        && tok_at(tokens, j) != Some(&Tok::OpenBrace)
        && tok_at(tokens, j) != Some(&Tok::Other(';'))
    {
        j += 1;
    }
    if tok_at(tokens, j) != Some(&Tok::OpenBrace) {
        return j + 1;
    }
    let end = skip_balanced(tokens, j, &Tok::OpenBrace, &Tok::CloseBrace);
    let mut fields = Vec::new();
    let mut depth = 0i32;
    let mut k = j;
    while k < end {
        match tok_at(tokens, k) {
            Some(Tok::OpenBrace) => depth += 1,
            Some(Tok::CloseBrace) => depth -= 1,
            Some(Tok::OpenParen) => {
                k = skip_balanced(tokens, k, &Tok::OpenParen, &Tok::CloseParen);
                continue;
            }
            Some(Tok::Other('<')) => {
                k = skip_generics(tokens, k);
                continue;
            }
            Some(Tok::Colon) if depth == 1 => {
                if let Some(fname) = ident_at(tokens, k - 1) {
                    // The type's head segment: first ident after the colon,
                    // walking the final `::` path segment forward.
                    let mut m = k + 1;
                    while matches!(
                        tok_at(tokens, m),
                        Some(Tok::Amp) | Some(Tok::Lifetime) | Some(Tok::Ident(_))
                    ) {
                        if let Some(Tok::Ident(_)) = tok_at(tokens, m) {
                            break;
                        }
                        m += 1;
                    }
                    let mut head = ident_at(tokens, m).unwrap_or("").to_string();
                    // Walk `std :: collections :: BTreeMap` to the leaf.
                    while tok_at(tokens, m + 1) == Some(&Tok::PathSep)
                        && ident_at(tokens, m + 2).is_some()
                    {
                        m += 2;
                        head = ident_at(tokens, m).unwrap_or("").to_string();
                    }
                    fields.push((fname.to_string(), head));
                }
            }
            _ => {}
        }
        k += 1;
    }
    out.structs.push(StructDef { name, line, fields });
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src).tokens)
    }

    #[test]
    fn parses_free_and_impl_fns() {
        let src = r#"
            pub fn alpha(x: u32, y: &str) -> u32 { x }
            struct S { n: u64 }
            impl S {
                fn beta(&self, k: u64) { let _ = k; }
                pub(crate) fn gamma(self) -> bool { true }
            }
            impl Clone for S {
                fn clone(&self) -> S { S { n: self.n } }
            }
        "#;
        let p = parse_src(src);
        let names: Vec<(Option<&str>, &str)> = p
            .fns
            .iter()
            .map(|f| (f.owner.as_deref(), f.name.as_str()))
            .collect();
        assert_eq!(
            names,
            vec![
                (None, "alpha"),
                (Some("S"), "beta"),
                (Some("S"), "gamma"),
                (Some("S"), "clone"),
            ]
        );
        assert_eq!(p.fns[0].params, vec!["x", "y"]);
        assert!(p.fns[0].has_ret);
        assert_eq!(p.fns[1].params, vec!["k"]);
        assert!(!p.fns[1].has_ret);
        assert_eq!(p.structs[0].fields, vec![("n".into(), "u64".into())]);
    }

    #[test]
    fn fn_generics_with_arrow_bounds_do_not_derail() {
        let src = "fn f<F: Fn() -> u64>(g: F) -> u64 { g() }\nfn h() {}\n";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "f");
        assert_eq!(p.fns[0].params, vec!["g"]);
        assert_eq!(p.fns[1].name, "h");
    }

    #[test]
    fn parses_enum_variants_with_payloads() {
        let src = r#"
            pub enum Fault {
                MasterFail,
                SlaveRestart(NodeId),
                DiskDegrade(NodeId, u32, SimDuration),
                Detail { node: u32, percent: u32 },
            }
        "#;
        let p = parse_src(src);
        let e = p.enum_named("Fault").expect("enum parsed");
        let names: Vec<&str> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["MasterFail", "SlaveRestart", "DiskDegrade", "Detail"]
        );
    }

    #[test]
    fn test_items_are_marked() {
        let src = r#"
            fn live() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn checks() {}
            }
        "#;
        let p = parse_src(src);
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
        assert!(p.fns[2].is_test);
    }

    #[test]
    fn trait_default_methods_carry_the_trait_owner() {
        let src = r#"
            trait Sink {
                fn record(&mut self, x: u32);
                fn flush(&mut self) { let _ = self; }
            }
        "#;
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].owner.as_deref(), Some("Sink"));
        assert!(p.fns[0].body.is_none());
        assert!(p.fns[1].body.is_some());
    }

    #[test]
    fn impl_for_generic_type_names_the_leaf() {
        let src = r#"
            impl<K: DenseId, V> std::ops::Index<&K> for IdMap<K, V> {
                fn index(&self, k: &K) -> &V { self.get(k).unwrap() }
            }
        "#;
        let p = parse_src(src);
        assert_eq!(p.fns[0].owner.as_deref(), Some("IdMap"));
    }

    #[test]
    fn bodies_are_token_ranges_into_the_stream() {
        let src = "fn f() { inner_call(); }\n";
        let toks = lex(src).tokens;
        let p = parse(&toks);
        let (s, e) = p.fns[0].body.expect("body");
        let body: Vec<&Tok> = toks[s..e].iter().map(|t| &t.tok).collect();
        assert!(body.contains(&&Tok::Ident("inner_call".into())));
        assert!(!body.contains(&&Tok::Ident("fn".into())));
    }
}
