//! Workspace symbol table and call graph.
//!
//! Resolution is by *name*, deliberately conservative: a call site `x.foo()`
//! resolves to every workspace function named `foo` that is a method, and
//! `foo()` / `Owner::foo()` to every function named `foo` (preferring an
//! owner match when the path names one). Over-approximation is safe for the
//! reachability passes — it can only add candidate paths, never hide one.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Lexed, Tok, Token};
use crate::parse::ParsedFile;

/// One lexed + parsed workspace file.
#[derive(Debug)]
pub struct FileUnit {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// The lexed token stream + directives.
    pub lexed: Lexed,
    /// The parsed items.
    pub parsed: ParsedFile,
}

/// Global function id: (index into the unit list, index into that unit's
/// `parsed.fns`).
pub type FnKey = (usize, usize);

/// One named function definition in the symbol table.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// The definition's key.
    pub key: FnKey,
    /// The impl/trait self-type, `None` for free functions.
    pub owner: Option<String>,
}

/// The workspace symbol table.
#[derive(Debug, Default)]
pub struct Symbols {
    /// Function name → every definition with that name.
    pub by_name: BTreeMap<String, Vec<FnSym>>,
    /// Struct field names whose declared type head is a keyed map
    /// (`HashMap`/`BTreeMap`/`IdMap`) — indexing these panics on a missing
    /// key, which the panic-reachability pass wants to know about.
    pub map_fields: BTreeSet<String>,
}

/// One resolved call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// The callee's key.
    pub callee: FnKey,
    /// The callee's name (for rendering chains).
    pub name: String,
    /// 1-based line of the call site.
    pub line: u32,
}

/// Caller → resolved call sites.
pub type CallGraph = BTreeMap<FnKey, Vec<Call>>;

const MAP_TYPES: &[&str] = &["HashMap", "BTreeMap", "IdMap"];

/// Identifiers that look like calls syntactically but are control flow or
/// construction, never workspace function calls.
const NON_CALL_WORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "let", "mut", "else", "move",
    "fn", "impl", "pub", "use", "mod", "where", "break", "continue", "struct", "enum", "trait",
    "type", "const", "static", "ref", "unsafe", "async", "await", "dyn", "box",
];

/// Method names that collide with std container/iterator vocabulary.
/// A `.name(...)` call with one of these names almost always targets a
/// std type, so resolving it to a same-named workspace function would
/// wire bogus edges (`.collect()` → some workspace `collect`). Skipping
/// them is a documented false-negative class: a *custom* type's method
/// with one of these names is not walked into.
const STD_METHODS: &[&str] = &[
    "new",
    "default",
    "clone",
    "collect",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "next",
    "drain",
    "clear",
    "extend",
    "retain",
    "take",
    "contains",
    "contains_key",
    "keys",
    "values",
    "sort",
    "sort_by",
    "sort_by_key",
    "dedup",
    "min",
    "max",
    "last",
    "first",
    "expect",
    "unwrap",
    "unwrap_or",
    "map",
    "and_then",
    "filter",
    "fold",
    "rev",
    "chain",
    "zip",
    "enumerate",
    "count",
    "sum",
    "any",
    "all",
    "find",
    "entry",
    "split_off",
    "truncate",
    "swap_remove",
    "to_string",
    "to_vec",
    "as_ref",
    "as_mut",
    "into",
    "from",
    "cmp",
    "eq",
    "hash",
    "fmt",
    "abs",
    "saturating_sub",
    "saturating_add",
];

/// Builds the symbol table over all units.
pub fn build_symbols(units: &[FileUnit]) -> Symbols {
    let mut syms = Symbols::default();
    for (ui, unit) in units.iter().enumerate() {
        for (fi, f) in unit.parsed.fns.iter().enumerate() {
            syms.by_name.entry(f.name.clone()).or_default().push(FnSym {
                key: (ui, fi),
                owner: f.owner.clone(),
            });
        }
        for s in &unit.parsed.structs {
            for (fname, thead) in &s.fields {
                if MAP_TYPES.contains(&thead.as_str()) {
                    syms.map_fields.insert(fname.clone());
                }
            }
        }
    }
    syms
}

/// Builds the call graph: for every function body, the workspace functions
/// its call sites can resolve to.
pub fn build_call_graph(units: &[FileUnit], syms: &Symbols) -> CallGraph {
    let mut graph = CallGraph::new();
    for (ui, unit) in units.iter().enumerate() {
        for (fi, f) in unit.parsed.fns.iter().enumerate() {
            let Some((start, end)) = f.body else {
                continue;
            };
            let calls = extract_calls(&unit.lexed.tokens[start..end], f.owner.as_deref(), syms);
            graph.insert((ui, fi), calls);
        }
    }
    graph
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn tok_at(toks: &[Token], i: usize) -> Option<&Tok> {
    toks.get(i).map(|t| &t.tok)
}

fn extract_calls(body: &[Token], self_owner: Option<&str>, syms: &Symbols) -> Vec<Call> {
    let mut out = Vec::new();
    let mut seen: BTreeSet<FnKey> = BTreeSet::new();
    for i in 0..body.len() {
        let Some(name) = ident_at(body, i) else {
            continue;
        };
        if tok_at(body, i + 1) != Some(&Tok::OpenParen) {
            continue;
        }
        if NON_CALL_WORDS.contains(&name) {
            continue;
        }
        let Some(defs) = syms.by_name.get(name) else {
            continue;
        };
        let prev = if i > 0 { Some(&body[i - 1].tok) } else { None };
        // Receiver types are unknown, so resolution is name-shaped with
        // three precision tiers:
        //  * `recv.name(...)` — any workspace *method* named `name`, unless
        //    the name collides with std vocabulary (STD_METHODS), where a
        //    workspace hit is almost surely a different function.
        //  * `Type::name(...)` — only methods owned by `Type` (with `Self`
        //    resolved against the enclosing impl); a lowercase qualifier is
        //    a module path and resolves to free functions.
        //  * `name(...)` — free functions only.
        let candidates: Vec<&FnSym> = match prev {
            Some(Tok::Dot) => {
                if STD_METHODS.contains(&name) {
                    continue;
                }
                defs.iter().filter(|d| d.owner.is_some()).collect()
            }
            Some(Tok::PathSep) => {
                let qual = match ident_at(body, i.wrapping_sub(2)) {
                    Some("Self") => self_owner,
                    q => q,
                };
                match qual {
                    Some(q) if q.chars().next().is_some_and(|c| c.is_ascii_uppercase()) => defs
                        .iter()
                        .filter(|d| d.owner.as_deref() == Some(q))
                        .collect(),
                    _ => defs.iter().filter(|d| d.owner.is_none()).collect(),
                }
            }
            _ => defs.iter().filter(|d| d.owner.is_none()).collect(),
        };
        for sym in candidates {
            if seen.insert(sym.key) {
                out.push(Call {
                    callee: sym.key,
                    name: name.to_string(),
                    line: body[i].line,
                });
            }
        }
    }
    out
}

/// BFS over the call graph from `entries`, bounded by `max_depth` edges.
/// Returns every reached function key mapped to the call chain that reached
/// it (entry-point name first), shortest chain wins.
pub fn reachable(
    graph: &CallGraph,
    units: &[FileUnit],
    entries: &[FnKey],
    max_depth: usize,
) -> BTreeMap<FnKey, Vec<String>> {
    let mut chains: BTreeMap<FnKey, Vec<String>> = BTreeMap::new();
    let mut frontier: Vec<FnKey> = Vec::new();
    for &e in entries {
        let name = units[e.0].parsed.fns[e.1].name.clone();
        chains.entry(e).or_insert_with(|| vec![name]);
        frontier.push(e);
    }
    for _ in 0..max_depth {
        let mut next = Vec::new();
        for key in frontier {
            let chain = chains.get(&key).cloned().unwrap_or_default();
            let Some(calls) = graph.get(&key) else {
                continue;
            };
            for call in calls {
                if chains.contains_key(&call.callee) {
                    continue;
                }
                // Never walk into test code.
                if units[call.callee.0].parsed.fns[call.callee.1].is_test {
                    continue;
                }
                let mut c = chain.clone();
                c.push(call.name.clone());
                chains.insert(call.callee, c);
                next.push(call.callee);
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    chains
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn unit(rel: &str, src: &str) -> FileUnit {
        let lexed = lex(src);
        let parsed = parse(&lexed.tokens);
        FileUnit {
            rel: rel.to_string(),
            lexed,
            parsed,
        }
    }

    #[test]
    fn resolves_free_method_and_path_calls() {
        let units = vec![unit(
            "crates/x/src/lib.rs",
            r#"
            fn helper() {}
            struct S;
            impl S {
                fn method(&self) { helper(); }
                fn entry(&self) { self.method(); S::method(&S); }
            }
            "#,
        )];
        let syms = build_symbols(&units);
        let graph = build_call_graph(&units, &syms);
        let entry_key = (0usize, 2usize); // fns: helper, method, entry
        let calls = graph.get(&entry_key).expect("entry has calls");
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"method"));
        let method_key = (0usize, 1usize);
        let mcalls = graph.get(&method_key).expect("method has calls");
        assert!(mcalls.iter().any(|c| c.name == "helper"));
    }

    #[test]
    fn map_typed_fields_are_collected() {
        let units = vec![unit(
            "crates/x/src/lib.rs",
            "struct T { tasks: BTreeMap<u32, u32>, names: Vec<String>, ids: IdMap<u32, u32> }\n",
        )];
        let syms = build_symbols(&units);
        assert!(syms.map_fields.contains("tasks"));
        assert!(syms.map_fields.contains("ids"));
        assert!(!syms.map_fields.contains("names"));
    }

    #[test]
    fn bfs_respects_depth_and_skips_tests() {
        let units = vec![unit(
            "crates/x/src/lib.rs",
            r#"
            fn d3() {}
            fn d2() { d3(); }
            fn d1() { d2(); }
            fn entry() { d1(); }
            #[cfg(test)]
            mod tests {
                fn entry_helper() {}
            }
            "#,
        )];
        let syms = build_symbols(&units);
        let graph = build_call_graph(&units, &syms);
        let entry = syms.by_name.get("entry").unwrap()[0].key;
        let within2 = reachable(&graph, &units, &[entry], 2);
        assert!(within2
            .keys()
            .any(|k| units[k.0].parsed.fns[k.1].name == "d2"));
        assert!(!within2
            .keys()
            .any(|k| units[k.0].parsed.fns[k.1].name == "d3"));
        let within3 = reachable(&graph, &units, &[entry], 3);
        let chain = within3
            .iter()
            .find(|(k, _)| units[k.0].parsed.fns[k.1].name == "d3")
            .map(|(_, c)| c.clone())
            .expect("d3 reached at depth 3");
        assert_eq!(chain, vec!["entry", "d1", "d2", "d3"]);
    }
}
