//! D10 — flow-sensitive determinism taint.
//!
//! The lattice is two-point (clean / tainted-with-origin) over local
//! binding names, tracked per function, statement by statement:
//!
//! * **Sources**: wall-clock reads (`Instant::now`, `SystemTime`), ambient
//!   environment (`std::env`, `env::var`), pointer addresses (`.as_ptr()`,
//!   `as *const` / `as *mut` casts), and calls to workspace functions whose
//!   own body reads a source and returns a value (one level of call
//!   summaries — `wall_clock()` is the canonical case).
//! * **Propagation**: `let name = expr` and `name = expr` taint `name` when
//!   `expr` contains a source or an already-tainted name, and *clear* it on
//!   a clean reassignment. `recv.field = expr` taints the field name within
//!   the function. Branches are merged pessimistically (taint acquired in
//!   any branch persists).
//! * **Sinks**: engine scheduling (`schedule_at`/`schedule_in`/
//!   `schedule_now`), RNG seeding (`SimRng::new`), `Engine::new`, telemetry
//!   emission (`.emit(`), and hashing (`.hash(`). A sink call whose argument
//!   list contains a source or tainted name is a violation, reported at the
//!   sink with the origin in the message.
//!
//! The bench crate's `ignem_bench::wall_clock()` is a *checked boundary*:
//! inside `crates/bench/`, raw wall-clock reads anywhere except the
//! `wall_clock` function in `crates/bench/src/timing.rs` are violations —
//! the funnel is enforced structurally instead of via a `lint: allow`
//! string. The funnel's return value still carries taint, so a bench-side
//! wall-clock value can never flow into a simulation sink unnoticed.
//!
//! Known false negatives (documented in DESIGN.md §14): taint through
//! function *arguments* (summaries cover return values only), taint through
//! fields across function boundaries, and taint through containers
//! (`vec[i]` reads are not tracked).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Tok, Token};
use crate::rules::Violation;
use crate::symbols::FileUnit;

/// The checked wall-clock boundary: (file, function) allowed to read the
/// host clock raw inside the bench crate.
pub const BENCH_BOUNDARY: (&str, &str) = ("crates/bench/src/timing.rs", "wall_clock");

/// Sink function names that schedule simulation work.
const SCHED_SINKS: &[&str] = &["schedule_at", "schedule_in", "schedule_now"];

/// One-level call summaries: names of non-test workspace functions that
/// return a value and read a taint source directly in their body.
#[derive(Debug, Default)]
pub struct Summaries {
    /// Function names whose return value is tainted.
    pub taint_returning: BTreeSet<String>,
}

/// Builds call summaries over all units.
pub fn build_summaries(units: &[FileUnit]) -> Summaries {
    let mut s = Summaries::default();
    for unit in units {
        for f in &unit.parsed.fns {
            if f.is_test || !f.has_ret {
                continue;
            }
            let Some((start, end)) = f.body else {
                continue;
            };
            let body = &unit.lexed.tokens[start..end];
            if find_direct_source(body, 0, body.len(), &BTreeSet::new()).is_some() {
                s.taint_returning.insert(f.name.clone());
            }
        }
    }
    s
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn tok_at(toks: &[Token], i: usize) -> Option<&Tok> {
    toks.get(i).map(|t| &t.tok)
}

/// Finds the first *direct* source in `toks[lo..hi]` — raw reads only, not
/// summary calls (`extra` adds summary names when the caller wants them).
/// Returns (description, line).
fn find_direct_source(
    toks: &[Token],
    lo: usize,
    hi: usize,
    extra: &BTreeSet<String>,
) -> Option<(String, u32)> {
    let mut i = lo;
    while i < hi {
        if let Some(id) = ident_at(toks, i) {
            match id {
                "Instant" | "SystemTime"
                    if tok_at(toks, i + 1) == Some(&Tok::PathSep)
                        && ident_at(toks, i + 2) == Some("now") =>
                {
                    return Some((format!("{id}::now"), toks[i].line));
                }
                "SystemTime" => return Some(("SystemTime".into(), toks[i].line)),
                "env"
                    if tok_at(toks, i + 1) == Some(&Tok::PathSep)
                        && matches!(ident_at(toks, i + 2), Some("var" | "vars" | "var_os")) =>
                {
                    return Some(("env::var".into(), toks[i].line));
                }
                "std"
                    if tok_at(toks, i + 1) == Some(&Tok::PathSep)
                        && ident_at(toks, i + 2) == Some("env") =>
                {
                    return Some(("std::env".into(), toks[i].line));
                }
                "as_ptr" | "as_mut_ptr"
                    if i > 0
                        && tok_at(toks, i - 1) == Some(&Tok::Dot)
                        && tok_at(toks, i + 1) == Some(&Tok::OpenParen) =>
                {
                    return Some((format!(".{id}()"), toks[i].line));
                }
                "as" if tok_at(toks, i + 1) == Some(&Tok::Other('*'))
                    && matches!(ident_at(toks, i + 2), Some("const" | "mut")) =>
                {
                    return Some(("pointer cast".into(), toks[i].line));
                }
                name if extra.contains(name) && tok_at(toks, i + 1) == Some(&Tok::OpenParen) => {
                    return Some((format!("{name}()"), toks[i].line));
                }
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Whether `toks[lo..hi]` mentions a tainted name; returns its origin.
fn find_tainted_use(
    toks: &[Token],
    lo: usize,
    hi: usize,
    tainted: &BTreeMap<String, String>,
) -> Option<String> {
    for i in lo..hi {
        if let Some(id) = ident_at(toks, i) {
            if let Some(origin) = tainted.get(id) {
                return Some(origin.clone());
            }
        }
    }
    None
}

/// Returns the end (exclusive) of the balanced paren group opening at `i`.
fn paren_end(toks: &[Token], i: usize, hi: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < hi {
        match tok_at(toks, j) {
            Some(Tok::OpenParen) => depth += 1,
            Some(Tok::CloseParen) => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    hi
}

/// Runs D10 over one unit. `summaries` supplies taint-returning call names.
pub fn check_unit(unit: &FileUnit, summaries: &Summaries) -> Vec<Violation> {
    let mut out = Vec::new();
    let in_bench = unit.rel.starts_with("crates/bench/");
    let toks = &unit.lexed.tokens;
    for f in &unit.parsed.fns {
        if f.is_test {
            continue;
        }
        let Some((start, end)) = f.body else {
            continue;
        };
        let is_boundary = unit.rel == BENCH_BOUNDARY.0 && f.name == BENCH_BOUNDARY.1;
        // Boundary enforcement: raw wall-clock reads in bench code outside
        // the sanctioned funnel.
        if in_bench && !is_boundary {
            let mut lo = start;
            while let Some((desc, line)) =
                find_wall_clock_read(toks, lo, end).map(|(d, l, next)| {
                    lo = next;
                    (d, l)
                })
            {
                out.push(Violation {
                    rule: "D10",
                    file: unit.rel.clone(),
                    line,
                    message: format!(
                        "raw wall-clock read `{desc}` outside the sanctioned \
                         `ignem_bench::wall_clock()` boundary; route host timing through it"
                    ),
                });
            }
        }
        // Flow pass: statement-by-statement taint tracking.
        out.extend(check_fn_flow(
            &unit.rel,
            toks,
            start,
            end,
            summaries,
            is_boundary,
        ));
    }
    out
}

/// Finds the next raw wall-clock read in `toks[lo..hi]`; returns
/// (description, line, resume index).
fn find_wall_clock_read(toks: &[Token], lo: usize, hi: usize) -> Option<(String, u32, usize)> {
    for i in lo..hi {
        if let Some(id @ ("Instant" | "SystemTime")) = ident_at(toks, i) {
            if tok_at(toks, i + 1) == Some(&Tok::PathSep) && ident_at(toks, i + 2) == Some("now") {
                return Some((format!("{id}::now"), toks[i].line, i + 3));
            }
            if id == "SystemTime" {
                return Some(("SystemTime".into(), toks[i].line, i + 1));
            }
        }
    }
    None
}

/// The per-function flow analysis.
fn check_fn_flow(
    rel: &str,
    toks: &[Token],
    start: usize,
    end: usize,
    summaries: &Summaries,
    is_boundary: bool,
) -> Vec<Violation> {
    let mut out = Vec::new();
    // name → origin description.
    let mut tainted: BTreeMap<String, String> = BTreeMap::new();
    let mut stmt_start = start;
    let mut i = start;
    while i <= end {
        let at_break = i == end
            || matches!(
                tok_at(toks, i),
                Some(Tok::Other(';')) | Some(Tok::OpenBrace) | Some(Tok::CloseBrace)
            );
        if !at_break {
            i += 1;
            continue;
        }
        let (lo, hi) = (stmt_start, i);
        if hi > lo {
            analyze_stmt(
                rel,
                toks,
                lo,
                hi,
                summaries,
                is_boundary,
                &mut tainted,
                &mut out,
            );
        }
        i += 1;
        stmt_start = i;
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn analyze_stmt(
    rel: &str,
    toks: &[Token],
    lo: usize,
    hi: usize,
    summaries: &Summaries,
    is_boundary: bool,
    tainted: &mut BTreeMap<String, String>,
    out: &mut Vec<Violation>,
) {
    // Sink check first: a sink call whose argument list carries taint.
    let mut k = lo;
    while k < hi {
        let sink = sink_at(toks, k, hi);
        if let Some((sink_name, args_open)) = sink {
            let args_end = paren_end(toks, args_open, hi);
            // The check window spans the statement up to the close of the
            // sink's arguments, so taint in the *receiver* of a method sink
            // (`addr.hash(state)`) counts, not just taint in the args.
            let source = if is_boundary {
                // Inside the sanctioned boundary, the raw read itself is
                // legal; only *tainted names* flowing onward would matter,
                // and the funnel has none.
                None
            } else {
                find_direct_source(toks, lo, args_end, &summaries.taint_returning)
                    .map(|(d, l)| format!("`{d}` at line {l}"))
            };
            let origin = source.or_else(|| {
                find_tainted_use(toks, lo, args_end, tainted)
                    .map(|o| format!("value tainted by {o}"))
            });
            if let Some(origin) = origin {
                out.push(Violation {
                    rule: "D10",
                    file: rel.to_string(),
                    line: toks[k].line,
                    message: format!(
                        "nondeterministic value ({origin}) flows into sink `{sink_name}`"
                    ),
                });
            }
            k = args_end;
            continue;
        }
        k += 1;
    }
    // Propagation: let-bindings, reassignments, field writes.
    let mut j = lo;
    let mut is_let = false;
    if ident_at(toks, j) == Some("let") {
        is_let = true;
        j += 1;
        if ident_at(toks, j) == Some("mut") {
            j += 1;
        }
    }
    let lhs = ident_at(toks, j).map(|s| s.to_string());
    let (lhs_name, eq_idx) = match (&lhs, is_let) {
        (Some(name), true) => {
            // `let [mut] name [: ty] = rhs` — find the top-level `=`.
            (Some(name.clone()), find_top_eq(toks, j + 1, hi))
        }
        (Some(name), false) => {
            // `name = rhs` or `recv.field = rhs`.
            let mut m = j + 1;
            let mut field = name.clone();
            while tok_at(toks, m) == Some(&Tok::Dot) && ident_at(toks, m + 1).is_some() {
                field = ident_at(toks, m + 1).unwrap_or(&field).to_string();
                m += 2;
            }
            if is_plain_eq(toks, m, hi) {
                (Some(field), Some(m))
            } else {
                (None, None)
            }
        }
        _ => (None, None),
    };
    if let (Some(name), Some(eq)) = (lhs_name, eq_idx) {
        let rhs_source = if is_boundary {
            None
        } else {
            find_direct_source(toks, eq + 1, hi, &summaries.taint_returning)
                .map(|(d, l)| format!("`{d}` at line {l}"))
        };
        let rhs_taint = rhs_source
            .or_else(|| find_tainted_use(toks, eq + 1, hi, tainted).map(|o| o.to_string()));
        match rhs_taint {
            Some(origin) => {
                tainted.insert(name, origin);
            }
            None => {
                tainted.remove(&name);
            }
        }
    }
}

/// Whether the token at `m` is a single `=` (not `==`, `!=`, `<=`, …).
fn is_plain_eq(toks: &[Token], m: usize, hi: usize) -> bool {
    if m >= hi || tok_at(toks, m) != Some(&Tok::Eq) {
        return false;
    }
    if tok_at(toks, m + 1) == Some(&Tok::Eq) {
        return false;
    }
    if m > 0 {
        if let Some(Tok::Other(c)) = tok_at(toks, m - 1) {
            if matches!(c, '!' | '<' | '>' | '+' | '-' | '*' | '/' | '%' | '|' | '^') {
                return false;
            }
        }
        if tok_at(toks, m - 1) == Some(&Tok::Eq) {
            return false;
        }
        if tok_at(toks, m - 1) == Some(&Tok::Amp) {
            return false;
        }
    }
    true
}

/// Finds the first top-level `=` in `toks[lo..hi)` (skipping generics and
/// balanced groups so `let x: Foo<T = U> = …` is not fooled; the workspace
/// has no associated-type-equality lets, but stay safe).
fn find_top_eq(toks: &[Token], lo: usize, hi: usize) -> Option<usize> {
    let mut depth = 0i32;
    for m in lo..hi {
        match tok_at(toks, m) {
            Some(Tok::OpenParen) | Some(Tok::OpenBracket) | Some(Tok::Other('<')) => depth += 1,
            Some(Tok::CloseParen) | Some(Tok::CloseBracket) | Some(Tok::Other('>')) => depth -= 1,
            Some(Tok::Eq) if depth <= 0 && is_plain_eq(toks, m, hi) => return Some(m),
            _ => {}
        }
    }
    None
}

/// Detects a sink call at `k`; returns (sink name, index of its `(`).
fn sink_at(toks: &[Token], k: usize, hi: usize) -> Option<(String, usize)> {
    let id = ident_at(toks, k)?;
    // `.emit(` / `.hash(` method sinks.
    if k > 0
        && tok_at(toks, k - 1) == Some(&Tok::Dot)
        && matches!(id, "emit" | "hash")
        && tok_at(toks, k + 1) == Some(&Tok::OpenParen)
        && k + 1 < hi
    {
        return Some((format!(".{id}"), k + 1));
    }
    // Scheduling sinks, as methods or qualified calls.
    if SCHED_SINKS.contains(&id) && tok_at(toks, k + 1) == Some(&Tok::OpenParen) && k + 1 < hi {
        return Some((id.to_string(), k + 1));
    }
    // `SimRng::new(` / `Engine::new(` seeding sinks.
    if matches!(id, "SimRng" | "Engine")
        && tok_at(toks, k + 1) == Some(&Tok::PathSep)
        && matches!(
            ident_at(toks, k + 2),
            Some("new" | "with_seed" | "from_seed")
        )
        && tok_at(toks, k + 3) == Some(&Tok::OpenParen)
        && k + 3 < hi
    {
        return Some((
            format!("{id}::{}", ident_at(toks, k + 2).unwrap_or("new")),
            k + 3,
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn unit(rel: &str, src: &str) -> FileUnit {
        let lexed = lex(src);
        let parsed = parse(&lexed.tokens);
        FileUnit {
            rel: rel.to_string(),
            lexed,
            parsed,
        }
    }

    fn d10(rel: &str, src: &str) -> Vec<Violation> {
        let units = vec![unit(rel, src)];
        let summaries = build_summaries(&units);
        check_unit(&units[0], &summaries)
    }

    #[test]
    fn taint_flows_through_lets_into_scheduling() {
        let src = r#"
            fn f(engine: &mut Engine<E>) {
                let t = Instant::now();
                let delay = t;
                engine.schedule_in(delay, payload);
            }
        "#;
        let v = d10("crates/simcore/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "D10");
        assert!(v[0].message.contains("schedule_in"));
    }

    #[test]
    fn clean_reassignment_clears_taint() {
        let src = r#"
            fn f(engine: &mut Engine<E>) {
                let mut t = Instant::now();
                t = fixed_delay();
                engine.schedule_in(t, payload);
            }
        "#;
        assert!(d10("crates/simcore/src/x.rs", src).is_empty());
    }

    #[test]
    fn pointer_address_into_hash_is_flagged() {
        let src = r#"
            fn f(h: &mut Hasher, buf: &[u8]) {
                let addr = buf.as_ptr();
                addr.hash(h);
            }
        "#;
        let v = d10("crates/simcore/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains(".as_ptr()"));
    }

    #[test]
    fn one_level_call_summary_taints_callers() {
        let src = r#"
            fn now_ms() -> u64 { Instant::now().elapsed().as_millis() as u64 }
            fn f(tele: &Telemetry) {
                let stamp = now_ms();
                tele.emit(stamp);
            }
        "#;
        let v = d10("crates/simcore/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("now_ms()"));
    }

    #[test]
    fn bench_raw_read_outside_boundary_is_flagged() {
        let src = "fn measure() -> Instant { Instant::now() }\n";
        let v = d10("crates/bench/src/report.rs", src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("wall_clock"));
    }

    #[test]
    fn the_boundary_fn_itself_is_clean() {
        let src = "pub fn wall_clock() -> Instant {\n    Instant::now()\n}\n";
        assert!(d10(BENCH_BOUNDARY.0, src).is_empty());
    }

    #[test]
    fn untainted_sink_arguments_are_clean() {
        let src = r#"
            fn f(engine: &mut Engine<E>) {
                let delay = SimDuration::from_ms(5);
                engine.schedule_in(delay, payload);
            }
        "#;
        assert!(d10("crates/simcore/src/x.rs", src).is_empty());
    }
}
