//! A minimal Rust lexer — just enough structure for the determinism rules.
//!
//! The lexer's contract is narrow: produce identifiers, the punctuation the
//! rule matchers care about, and line numbers, while *correctly skipping*
//! everything that could fake a match — string literals (including raw and
//! byte strings), char literals, lifetimes, and comments. Comments are not
//! entirely discarded: `// lint: allow(...)` suppression directives are
//! collected on the way through.

/// One lexed token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind (and text, for identifiers).
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// Token kinds. Literals collapse to a single opaque kind: no lint rule
/// inspects literal contents, they only need to not be mistaken for code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword, with its text.
    Ident(String),
    /// `::`
    PathSep,
    /// `.`
    Dot,
    /// `&`
    Amp,
    /// `#`
    Pound,
    /// `:` (single colon)
    Colon,
    /// `=` (single equals; `==` lexes as two of these)
    Eq,
    /// `(`
    OpenParen,
    /// `)`
    CloseParen,
    /// `[`
    OpenBracket,
    /// `]`
    CloseBracket,
    /// `{`
    OpenBrace,
    /// `}`
    CloseBrace,
    /// Any string/char/byte/numeric literal.
    Literal,
    /// A lifetime such as `'a`.
    Lifetime,
    /// Any other single character of punctuation.
    Other(char),
}

/// A `// lint: allow(...)` comment, parsed or rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// A well-formed `// lint: allow(RULE, reason = "...")` with a
    /// non-empty reason. Suppresses matching violations on its own line or
    /// the line directly below.
    Allow {
        /// 1-based line the comment sits on.
        line: u32,
        /// The rule id being allowed, e.g. `D02`.
        rule: String,
        /// The human justification (guaranteed non-empty).
        reason: String,
    },
    /// A comment that names `lint:` but does not parse, or parses with an
    /// empty reason. Always reported as rule `A00`.
    Malformed {
        /// 1-based line the comment sits on.
        line: u32,
        /// What was wrong with it.
        detail: String,
    },
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Every `lint:` comment encountered, in source order.
    pub directives: Vec<Directive>,
}

/// Lexes `src`, returning tokens and lint directives.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                let text = &src[start..j];
                if let Some(d) = parse_directive(text, line) {
                    out.directives.push(d);
                }
                i = j;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Nested block comments, as Rust allows.
                let mut depth = 1u32;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    match b[j] {
                        b'\n' => line += 1,
                        b'/' if b.get(j + 1) == Some(&b'*') => {
                            depth += 1;
                            j += 1;
                        }
                        b'*' if b.get(j + 1) == Some(&b'/') => {
                            depth -= 1;
                            j += 1;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j;
            }
            b'"' => {
                let tok_line = line;
                i = skip_string(b, i, &mut line);
                out.tokens.push(Token {
                    tok: Tok::Literal,
                    line: tok_line,
                });
            }
            b'\'' => {
                let tok_line = line;
                let (next, tok) = lex_quote(b, i, &mut line);
                i = next;
                out.tokens.push(Token {
                    tok,
                    line: tok_line,
                });
            }
            c if c.is_ascii_digit() => {
                let tok_line = line;
                i = skip_number(b, i);
                out.tokens.push(Token {
                    tok: Tok::Literal,
                    line: tok_line,
                });
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let tok_line = line;
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                let ident = &src[start..i];
                // Raw / byte string prefixes lex as part of the literal.
                // Only `r`/`br` take hash guards; `b#` is not a literal
                // prefix and must fall through to a plain ident + Pound.
                if ((ident == "r" || ident == "br") && matches!(b.get(i), Some(b'"') | Some(b'#')))
                    || (ident == "b" && b.get(i) == Some(&b'"'))
                {
                    if ident == "r" && b.get(i) == Some(&b'#') && is_ident_start(b.get(i + 1)) {
                        // r#ident raw identifier, not a raw string.
                        i += 1;
                        let rstart = i;
                        while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                            i += 1;
                        }
                        out.tokens.push(Token {
                            tok: Tok::Ident(src[rstart..i].to_string()),
                            line: tok_line,
                        });
                        continue;
                    }
                    i = if ident == "b" {
                        skip_string(b, i, &mut line)
                    } else {
                        skip_raw_string(b, i, &mut line)
                    };
                    out.tokens.push(Token {
                        tok: Tok::Literal,
                        line: tok_line,
                    });
                    continue;
                }
                if ident == "b" && b.get(i) == Some(&b'\'') {
                    let (next, _) = lex_quote(b, i, &mut line);
                    i = next;
                    out.tokens.push(Token {
                        tok: Tok::Literal,
                        line: tok_line,
                    });
                    continue;
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(ident.to_string()),
                    line: tok_line,
                });
            }
            b':' if b.get(i + 1) == Some(&b':') => {
                out.tokens.push(Token {
                    tok: Tok::PathSep,
                    line,
                });
                i += 2;
            }
            _ => {
                let tok = match c {
                    b'.' => Tok::Dot,
                    b'&' => Tok::Amp,
                    b'#' => Tok::Pound,
                    b':' => Tok::Colon,
                    b'=' => Tok::Eq,
                    b'(' => Tok::OpenParen,
                    b')' => Tok::CloseParen,
                    b'[' => Tok::OpenBracket,
                    b']' => Tok::CloseBracket,
                    b'{' => Tok::OpenBrace,
                    b'}' => Tok::CloseBrace,
                    c => Tok::Other(c as char),
                };
                out.tokens.push(Token { tok, line });
                i += 1;
            }
        }
    }
    out
}

fn is_ident_start(c: Option<&u8>) -> bool {
    matches!(c, Some(c) if *c == b'_' || c.is_ascii_alphabetic())
}

/// Skips a `"..."` string starting at the opening quote; returns the index
/// just past the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    debug_assert_eq!(b[i], b'"');
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                // An escaped newline is a line continuation — the newline is
                // consumed as part of the escape, so count it here or every
                // later token in the file drifts up a line.
                if b.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string body starting at the first `#` or `"` after the `r`
/// / `br` prefix; returns the index just past the closing delimiter.
fn skip_raw_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        return i; // not actually a raw string; resync
    }
    i += 1;
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
        } else if b[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && b.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Lexes the construct starting at a `'`: a char literal or a lifetime.
fn lex_quote(b: &[u8], i: usize, line: &mut u32) -> (usize, Tok) {
    // Byte-char prefix: caller passes i at the quote either way.
    let q = if b[i] == b'\'' { i } else { i + 1 };
    match b.get(q + 1) {
        Some(b'\\') => {
            // Escaped char literal: skip the backslash and the escaped
            // character (so `'\''` works), then scan for the closing quote.
            let mut j = q + 3;
            while j < b.len() && b[j] != b'\'' {
                if b[j] == b'\\' {
                    j += 1;
                }
                j += 1;
            }
            (j + 1, Tok::Literal)
        }
        Some(c) if *c == b'_' || c.is_ascii_alphanumeric() => {
            // 'x' is a char literal; 'x not followed by a quote is a
            // lifetime (consume the identifier run).
            let mut j = q + 2;
            while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                j += 1;
            }
            if j == q + 2 && b.get(j) == Some(&b'\'') {
                (j + 1, Tok::Literal)
            } else if b.get(j) == Some(&b'\'') && j > q + 2 {
                // Multi-char quoted run only occurs in char literals like
                // '\u{..}' (already handled) — treat as literal defensively.
                (j + 1, Tok::Literal)
            } else {
                (j, Tok::Lifetime)
            }
        }
        Some(b'\n') => {
            *line += 1;
            (q + 2, Tok::Other('\''))
        }
        Some(_) => {
            // Some other single char, e.g. '.' — char literal if closed.
            if b.get(q + 2) == Some(&b'\'') {
                (q + 3, Tok::Literal)
            } else {
                (q + 1, Tok::Other('\''))
            }
        }
        None => (q + 1, Tok::Other('\'')),
    }
}

/// Skips a numeric literal (integers, floats, suffixes, underscores).
fn skip_number(b: &[u8], mut i: usize) -> usize {
    while i < b.len() {
        let c = b[i];
        if c == b'_' || c.is_ascii_alphanumeric() {
            i += 1;
        } else if c == b'.' && matches!(b.get(i + 1), Some(d) if d.is_ascii_digit()) {
            // `1.5` continues the literal; `0..10` and `1.method()` do not.
            i += 1;
        } else if (c == b'+' || c == b'-')
            && i > 0
            && (b[i - 1] == b'e' || b[i - 1] == b'E')
            && matches!(b.get(i + 1), Some(d) if d.is_ascii_digit())
        {
            // Exponent sign, as in `1e-3`.
            i += 1;
        } else {
            break;
        }
    }
    i
}

/// Parses a line comment's text into a directive.
///
/// Only comments that *begin* with `lint:` count — prose that merely
/// mentions the directive syntax (like this sentence) is ignored, and doc
/// comments (`/// lint:` lexes as `/ lint:`) cannot carry suppressions.
fn parse_directive(text: &str, line: u32) -> Option<Directive> {
    let rest = text.trim_start().strip_prefix("lint:")?;
    let rest = rest.trim_start();
    let malformed = |detail: &str| {
        Some(Directive::Malformed {
            line,
            detail: detail.to_string(),
        })
    };
    let Some(args) = rest.strip_prefix("allow(") else {
        return malformed("expected `allow(<rule>, reason = \"...\")` after `lint:`");
    };
    let args = args.trim_start();
    let rule_len = args
        .bytes()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == b'_')
        .count();
    if rule_len == 0 {
        return malformed("missing rule id in `lint: allow(...)`");
    }
    let rule = args[..rule_len].to_string();
    let rest = args[rule_len..].trim_start();
    let Some(rest) = rest.strip_prefix(',') else {
        return malformed("missing `, reason = \"...\"` in `lint: allow(...)`");
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("reason") else {
        return malformed("expected `reason = \"...\"` after the rule id");
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('=') else {
        return malformed("expected `=` after `reason`");
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('"') else {
        return malformed("reason must be a double-quoted string");
    };
    let Some(end) = rest.find('"') else {
        return malformed("unterminated reason string");
    };
    let reason = rest[..end].trim();
    if reason.is_empty() {
        return malformed("empty reason — say why the rule does not apply here");
    }
    if !rest[end + 1..].trim_start().starts_with(')') {
        return malformed("expected `)` closing `lint: allow(...)`");
    }
    Some(Directive::Allow {
        line,
        rule,
        reason: reason.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_idents() {
        let src = r##"
            let x = "Instant::now inside a string";
            // Instant::now inside a comment
            /* SystemTime in /* nested */ block */
            let y = r#"SystemTime raw"#;
            let z = b"HashMap bytes";
            let c = 'h';
        "##;
        let ids = idents(src);
        assert!(ids
            .iter()
            .all(|s| s != "Instant" && s != "SystemTime" && s != "HashMap"));
        assert_eq!(ids, vec!["let", "x", "let", "y", "let", "z", "let", "c"]);
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let ids = idents("fn f<'a>(x: &'a HashMap<u8, u8>) {}");
        assert!(ids.contains(&"HashMap".to_string()));
    }

    #[test]
    fn directive_roundtrip() {
        let out = lex("foo(); // lint: allow(D01, reason = \"bench timer\")\n");
        assert_eq!(
            out.directives,
            vec![Directive::Allow {
                line: 1,
                rule: "D01".into(),
                reason: "bench timer".into()
            }]
        );
    }

    #[test]
    fn empty_reason_is_malformed() {
        let out = lex("// lint: allow(P01, reason = \"\")\n// lint: allow(P01)\n");
        assert_eq!(out.directives.len(), 2);
        assert!(matches!(
            out.directives[0],
            Directive::Malformed { line: 1, .. }
        ));
        assert!(matches!(
            out.directives[1],
            Directive::Malformed { line: 2, .. }
        ));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"two\nlines\";\nlet b = 1;\n";
        let out = lex(src);
        let b_line = out
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("b".into()))
            .map(|t| t.line);
        assert_eq!(b_line, Some(3));
    }

    fn line_of(src: &str, name: &str) -> Option<u32> {
        lex(src)
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident(name.into()))
            .map(|t| t.line)
    }

    #[test]
    fn string_line_continuations_count_their_newline() {
        // `\` at end of line continues the string; the newline is consumed
        // by the escape arm, not the `\n` arm.
        let src = "let a = \"one \\\ntwo\";\nlet marker = 1;\n";
        assert_eq!(line_of(src, "marker"), Some(3));
    }

    #[test]
    fn raw_strings_with_hash_guards_do_not_end_early() {
        // The `"#` inside an `r##"…"##` body must not close the literal.
        let src = "let a = r##\"body with \"# inside and Instant::now\"##;\nlet marker = 1;\n";
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"inside".to_string()));
        assert_eq!(line_of(src, "marker"), Some(2));
    }

    #[test]
    fn byte_raw_strings_take_hash_guards() {
        let src = "let a = br#\"SystemTime \" quote\"#;\nlet marker = 1;\n";
        let ids = idents(src);
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert_eq!(line_of(src, "marker"), Some(2));
    }

    #[test]
    fn multiline_raw_strings_keep_line_numbers() {
        let src = "let a = r#\"one\ntwo\nthree\"#;\nlet marker = 1;\n";
        assert_eq!(line_of(src, "marker"), Some(4));
    }

    #[test]
    fn nested_block_comments_balance_and_count_lines() {
        let src = "/* outer\n/* inner\n*/ still comment HashMap\n*/\nlet marker = 1;\n";
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert_eq!(line_of(src, "marker"), Some(5));
    }

    #[test]
    fn block_comment_edge_sequences() {
        // `/*/` opens without closing itself; `/**/` is a complete comment.
        let src = "/**/ let a = 1; /*/ not code */ let marker = 2;\n";
        let ids = idents(src);
        assert!(ids.contains(&"a".to_string()));
        assert!(!ids.contains(&"not".to_string()));
        assert!(ids.contains(&"marker".to_string()));
    }

    #[test]
    fn b_followed_by_pound_is_not_a_literal_prefix() {
        // `b # [x]` must lex as ident + pound, not trip the byte-string
        // path (skip_string asserts its cursor sits on a quote).
        let out = lex("let b = 1; let c = b # 2;\n");
        assert!(out.tokens.iter().any(|t| t.tok == Tok::Pound));
        assert!(
            out.tokens
                .iter()
                .filter(|t| t.tok == Tok::Ident("b".into()))
                .count()
                >= 2
        );
    }
}
