//! # ignem-analyze — the workspace's static analysis pass
//!
//! Bit-identical same-seed replay is the repository's core invariant, and
//! it dies by a thousand small cuts: a wall-clock read here, a `HashMap`
//! iteration there, an `unwrap()` that turns a survivable fault into a
//! panic, a new telemetry variant whose span arm nobody wrote. This crate
//! enforces the code patterns determinism depends on with a from-scratch
//! lexer, an item-level parser, a workspace symbol table and call graph —
//! no `syn`, no external dependencies, in keeping with the workspace's
//! offline-build policy.
//!
//! Three layers:
//!
//! 1. **Token rules** ([`rules`]) — the original per-line matchers:
//!    D01 wall-clock, D02 hash iteration, D03 ambient env, P01 fault-path
//!    panics (file-scoped), F01 NaN ordering, T01 library prints, A00
//!    malformed directives.
//! 2. **Flow analysis** ([`taint`]) — D10 determinism taint: wall-clock /
//!    ambient-env / pointer-address sources propagate through lets, field
//!    writes and one level of calls; Engine scheduling, RNG seeding,
//!    telemetry emission and hashing are sinks. The bench crate's
//!    `wall_clock()` funnel is a structurally checked boundary.
//! 3. **Workspace analysis** ([`xcheck`], [`reach`]) — X01–X04 cross-crate
//!    exhaustiveness (every `Event` variant wired through span builder,
//!    explainer, schema doc; every `Fault` variant through the chaos
//!    injector and DESIGN.md), P02 interprocedural panic reachability and
//!    Q01 unbounded growth on fault paths, both over the call graph from
//!    a fault/recovery entry-point registry.
//!
//! A violation is suppressed only by `// lint: allow(<rule>, reason =
//! "...")` with a non-empty reason, placed on the violating line or the
//! line directly above. Test code (`#[cfg(test)]` / `#[test]` items) is
//! exempt from every rule. CI gates on [`baseline_diff`] against the
//! committed `ANALYZE_BASELINE.json` — new findings fail the build, and so
//! do stale baseline entries that no longer fire (the baseline can only
//! shrink together with the source that justified it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod parse;
pub mod reach;
pub mod rules;
pub mod sarif;
pub mod symbols;
pub mod taint;
pub mod xcheck;

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{scope_for, Violation, P01_FILES, SIM_CRATES};
pub use sarif::to_sarif;
pub use symbols::FileUnit;
pub use xcheck::DocFile;

use lexer::Directive;

/// The full result of analyzing a tree.
#[derive(Debug)]
pub struct LintReport {
    /// All violations, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the machine-readable JSON report.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"files_scanned\":");
        s.push_str(&self.files_scanned.to_string());
        s.push_str(",\"violation_count\":");
        s.push_str(&self.violations.len().to_string());
        s.push_str(",\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"rule\":\"");
            s.push_str(v.rule);
            s.push_str("\",\"file\":\"");
            json_escape_into(&v.file, &mut s);
            s.push_str("\",\"line\":");
            s.push_str(&v.line.to_string());
            s.push_str(",\"message\":\"");
            json_escape_into(&v.message, &mut s);
            s.push_str("\"}");
        }
        s.push_str("]}");
        s
    }

    /// Restricts the report to violations in `files` (workspace-relative
    /// paths). Analysis always runs over the whole workspace — cross-crate
    /// passes need global context — and `--changed` only narrows what is
    /// *reported*, so a filtered run flags exactly what a full run flags on
    /// those files.
    pub fn filter_to_files(&self, files: &BTreeSet<String>) -> LintReport {
        LintReport {
            violations: self
                .violations
                .iter()
                .filter(|v| files.contains(&v.file))
                .cloned()
                .collect(),
            files_scanned: self.files_scanned,
        }
    }

    /// Renders the report as a baseline file (rule/file/line triples).
    pub fn to_baseline_json(&self) -> String {
        let mut s = String::from("{\"entries\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n  {\"rule\":\"");
            s.push_str(v.rule);
            s.push_str("\",\"file\":\"");
            json_escape_into(&v.file, &mut s);
            s.push_str("\",\"line\":");
            s.push_str(&v.line.to_string());
            s.push('}');
        }
        if !self.violations.is_empty() {
            s.push('\n');
        }
        s.push_str("]}\n");
        s
    }
}

fn json_escape_into(src: &str, out: &mut String) {
    for c in src.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Lints a single source string as if it lived at `rel` (workspace-relative
/// path with `/` separators) — token rules plus the D10 flow pass, which is
/// the per-file subset of the analysis. The fixture tests drive this.
pub fn lint_source(rel: &str, source: &str) -> Vec<Violation> {
    let unit = load_unit(rel, source);
    let mut out = rules::check_file(rel, &unit.lexed);
    if scope_for(rel).d10 {
        let units = [unit];
        let summaries = taint::build_summaries(&units);
        let mut flow = taint::check_unit(&units[0], &summaries);
        apply_allows(&mut flow, &units[0].lexed.directives);
        out.extend(flow);
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Builds a [`FileUnit`] from one source string.
pub fn load_unit(rel: &str, source: &str) -> FileUnit {
    let lexed = lexer::lex(source);
    let parsed = parse::parse(&lexed.tokens);
    FileUnit {
        rel: rel.to_string(),
        lexed,
        parsed,
    }
}

/// Removes violations suppressed by an allow directive on the same line or
/// the line directly above.
pub fn apply_allows(violations: &mut Vec<Violation>, directives: &[Directive]) {
    violations.retain(|v| {
        !directives.iter().any(|d| match d {
            Directive::Allow { line, rule, .. } => {
                rule == v.rule && (*line == v.line || *line + 1 == v.line)
            }
            Directive::Malformed { .. } => false,
        })
    });
}

/// The workspace root, derived from this crate's manifest dir at compile
/// time (no runtime environment reads needed).
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Collects the `.rs` files to analyze under `root`, as (relative path,
/// absolute path) pairs in sorted order.
///
/// Scanned: `crates/*/src/**` and `crates/*/benches/**`. Skipped:
/// integration `tests/` trees, fixture directories, `src/bin` binaries
/// (bins legitimately own `std::env`/`std::process`), and build output.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        for sub in ["src", "benches"] {
            let tree = dir.join(sub);
            if tree.is_dir() {
                walk(&tree, root, &mut out)?;
            }
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if matches!(name.as_str(), "bin" | "tests" | "fixtures" | "target") {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Loads and parses every workspace file into units.
pub fn load_units(root: &Path) -> io::Result<Vec<FileUnit>> {
    let files = workspace_files(root)?;
    let mut units = Vec::with_capacity(files.len());
    for (rel, path) in files {
        let source = fs::read_to_string(&path)?;
        units.push(load_unit(&rel, &source));
    }
    Ok(units)
}

/// Loads the documentation files the X-series diffs against. Missing files
/// are simply absent from the list (xcheck reports the schema doc's absence
/// itself; DESIGN.md always exists in a checkout).
pub fn load_docs(root: &Path) -> Vec<DocFile> {
    let mut docs = Vec::new();
    for rel in [xcheck::SCHEMA_DOC, xcheck::DESIGN_DOC] {
        if let Ok(text) = fs::read_to_string(root.join(rel)) {
            docs.push(DocFile {
                rel: rel.to_string(),
                text,
            });
        }
    }
    docs
}

/// Runs the workspace-level passes (D10, X-series, P02/Q01) over
/// already-loaded units and docs, with allow filtering applied. Token
/// rules are *not* included — [`run_analysis`] combines both.
pub fn analyze_units(units: &[FileUnit], docs: &[DocFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    let summaries = taint::build_summaries(units);
    for unit in units {
        if scope_for(&unit.rel).d10 {
            out.extend(taint::check_unit(unit, &summaries));
        }
    }
    out.extend(xcheck::run_xchecks(units, docs));
    let syms = symbols::build_symbols(units);
    let graph = symbols::build_call_graph(units, &syms);
    out.extend(reach::run_reach(units, &syms, &graph));
    // Allow filtering, per the file each violation anchors in.
    let mut filtered = Vec::with_capacity(out.len());
    for v in out {
        let suppressed = units.iter().find(|u| u.rel == v.file).is_some_and(|u| {
            u.lexed.directives.iter().any(|d| match d {
                Directive::Allow { line, rule, .. } => {
                    rule == v.rule && (*line == v.line || *line + 1 == v.line)
                }
                Directive::Malformed { .. } => false,
            })
        });
        if !suppressed {
            filtered.push(v);
        }
    }
    filtered
}

/// Analyzes the whole workspace under `root`: token rules + flow +
/// workspace passes.
pub fn run_analysis(root: &Path) -> io::Result<LintReport> {
    let units = load_units(root)?;
    let docs = load_docs(root);
    let mut violations = Vec::new();
    for unit in &units {
        violations.extend(rules::check_file(&unit.rel, &unit.lexed));
    }
    violations.extend(analyze_units(&units, &docs));
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(LintReport {
        violations,
        files_scanned: units.len(),
    })
}

/// Lints the whole workspace under `root` with the token rules only.
/// Kept for comparison and for callers that want the cheap subset; the
/// self-check and CI use [`run_analysis`].
pub fn run_lint(root: &Path) -> io::Result<LintReport> {
    let files = workspace_files(root)?;
    let mut violations = Vec::new();
    for (rel, path) in &files {
        let source = fs::read_to_string(path)?;
        violations.extend(rules::check_file(rel, &lexer::lex(&source)));
    }
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(LintReport {
        violations,
        files_scanned: files.len(),
    })
}

/// One accepted finding in the committed baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

/// The two failure directions of a baseline comparison.
#[derive(Debug, Default)]
pub struct BaselineDiff {
    /// Findings not covered by the baseline — regressions; fail the build.
    pub new: Vec<Violation>,
    /// Baseline entries that no longer fire — a stale baseline; fail the
    /// build so the file shrinks together with the fix that earned it.
    pub stale: Vec<BaselineEntry>,
}

impl BaselineDiff {
    /// Whether the report matches the baseline exactly.
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

/// Parses the baseline file format written by
/// [`LintReport::to_baseline_json`]. The parser is deliberately small — it
/// accepts exactly the shape this tool writes (an `entries` array of
/// `{"rule","file","line"}` objects, any whitespace).
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut entries = Vec::new();
    let mut rest = text;
    if !rest.contains("\"entries\"") {
        return Err("baseline missing \"entries\" key".to_string());
    }
    while let Some(pos) = rest.find("{\"rule\":\"") {
        rest = &rest[pos + 9..];
        let Some(q) = rest.find('"') else {
            return Err("unterminated rule string".to_string());
        };
        let rule = rest[..q].to_string();
        rest = &rest[q..];
        let Some(pos) = rest.find("\"file\":\"") else {
            return Err(format!("entry for rule {rule} missing \"file\""));
        };
        rest = &rest[pos + 8..];
        let Some(q) = find_string_end(rest) else {
            return Err("unterminated file string".to_string());
        };
        let file = unescape(&rest[..q]);
        rest = &rest[q..];
        let Some(pos) = rest.find("\"line\":") else {
            return Err(format!("entry for {file} missing \"line\""));
        };
        rest = &rest[pos + 7..];
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        let line: u32 = digits
            .parse()
            .map_err(|_| format!("bad line number in entry for {file}"))?;
        rest = &rest[digits.len()..];
        entries.push(BaselineEntry { rule, file, line });
    }
    Ok(entries)
}

fn find_string_end(s: &str) -> Option<usize> {
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(n) = chars.next() {
                out.push(n);
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Compares a report against the committed baseline.
///
/// Matching is by (rule, file) with a line *tolerance* of zero — baselines
/// pin exact lines, so unrelated edits that move an accepted finding force
/// a deliberate baseline refresh. That is intended: the baseline should
/// stay empty, and any entry in it should hurt a little.
pub fn baseline_diff(report: &LintReport, baseline: &[BaselineEntry]) -> BaselineDiff {
    let mut diff = BaselineDiff::default();
    for v in &report.violations {
        let covered = baseline
            .iter()
            .any(|b| b.rule == v.rule && b.file == v.file && b.line == v.line);
        if !covered {
            diff.new.push(v.clone());
        }
    }
    for b in baseline {
        let fires = report
            .violations
            .iter()
            .any(|v| v.rule == b.rule && v.file == b.file && v.line == b.line);
        if !fires {
            diff.stale.push(b.clone());
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_roundtrip_and_diff() {
        let report = LintReport {
            violations: vec![
                Violation {
                    rule: "D10",
                    file: "crates/x/src/a.rs".into(),
                    line: 3,
                    message: "m".into(),
                },
                Violation {
                    rule: "P02",
                    file: "crates/y/src/b.rs".into(),
                    line: 9,
                    message: "n".into(),
                },
            ],
            files_scanned: 2,
        };
        let text = report.to_baseline_json();
        let parsed = parse_baseline(&text).expect("parses");
        assert_eq!(parsed.len(), 2);
        let diff = baseline_diff(&report, &parsed);
        assert!(diff.is_clean());
        // Drop one entry → that finding is new; add a bogus one → stale.
        let mut edited = parsed.clone();
        edited.remove(0);
        edited.push(BaselineEntry {
            rule: "Q01".into(),
            file: "crates/z/src/c.rs".into(),
            line: 1,
        });
        let diff = baseline_diff(&report, &edited);
        assert_eq!(diff.new.len(), 1);
        assert_eq!(diff.new[0].rule, "D10");
        assert_eq!(diff.stale.len(), 1);
        assert_eq!(diff.stale[0].rule, "Q01");
    }

    #[test]
    fn empty_baseline_parses() {
        let parsed = parse_baseline("{\"entries\":[]}\n").expect("parses");
        assert!(parsed.is_empty());
    }

    #[test]
    fn filter_to_files_narrows_reporting_only() {
        let report = LintReport {
            violations: vec![
                Violation {
                    rule: "D10",
                    file: "crates/x/src/a.rs".into(),
                    line: 3,
                    message: "m".into(),
                },
                Violation {
                    rule: "P02",
                    file: "crates/y/src/b.rs".into(),
                    line: 9,
                    message: "n".into(),
                },
            ],
            files_scanned: 2,
        };
        let only: BTreeSet<String> = ["crates/x/src/a.rs".to_string()].into_iter().collect();
        let narrowed = report.filter_to_files(&only);
        assert_eq!(narrowed.violations.len(), 1);
        assert_eq!(narrowed.violations[0].rule, "D10");
        assert_eq!(narrowed.files_scanned, 2);
    }
}
