//! # ignem-lint — the workspace's determinism lint pass
//!
//! Bit-identical same-seed replay is the repository's core invariant, and
//! it dies by a thousand small cuts: a wall-clock read here, a `HashMap`
//! iteration there, an `unwrap()` that turns a survivable fault into a
//! panic. `ignem-lint` enforces the code patterns determinism depends on
//! with a from-scratch lexer and rule engine — no `syn`, no external
//! dependencies, in keeping with the workspace's offline-build policy.
//!
//! ## Rules
//!
//! | Rule | Scope | What it bans |
//! |------|-------|--------------|
//! | D01  | sim crates + bench | `Instant::now` / `SystemTime` wall-clock reads |
//! | D02  | sim crates | iteration over `HashMap` / `HashSet` |
//! | D03  | sim crates (minus `simcore::rng`) | `std::env`, `std::process`, ambient randomness |
//! | P01  | RPC/fault/migration files | `unwrap()` / `expect()` outside tests |
//! | F01  | sim crates | `partial_cmp(..).unwrap()` float ordering |
//! | T01  | sim crates (minus `simcore::trace`) | `println!` / `eprintln!` in library code |
//! | A00  | everywhere | malformed `// lint: allow(...)` directives |
//!
//! A violation is suppressed only by `// lint: allow(<rule>, reason =
//! "...")` with a non-empty reason, placed on the violating line or the
//! line directly above. Test code (`#[cfg(test)]` / `#[test]` items) is
//! exempt from every rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{scope_for, Violation, P01_FILES, SIM_CRATES};

/// The full result of linting a tree.
#[derive(Debug)]
pub struct LintReport {
    /// All violations, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the machine-readable JSON report.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"files_scanned\":");
        s.push_str(&self.files_scanned.to_string());
        s.push_str(",\"violation_count\":");
        s.push_str(&self.violations.len().to_string());
        s.push_str(",\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"rule\":\"");
            s.push_str(v.rule);
            s.push_str("\",\"file\":\"");
            json_escape_into(&v.file, &mut s);
            s.push_str("\",\"line\":");
            s.push_str(&v.line.to_string());
            s.push_str(",\"message\":\"");
            json_escape_into(&v.message, &mut s);
            s.push_str("\"}");
        }
        s.push_str("]}");
        s
    }
}

fn json_escape_into(src: &str, out: &mut String) {
    for c in src.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Lints a single source string as if it lived at `rel` (workspace-relative
/// path with `/` separators). This is the unit the fixture tests drive.
pub fn lint_source(rel: &str, source: &str) -> Vec<Violation> {
    rules::check_file(rel, &lexer::lex(source))
}

/// The workspace root, derived from this crate's manifest dir at compile
/// time (no runtime environment reads needed).
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Collects the `.rs` files to lint under `root`, as (relative path,
/// absolute path) pairs in sorted order.
///
/// Scanned: `crates/*/src/**` and `crates/*/benches/**`. Skipped:
/// integration `tests/` trees, fixture directories, `src/bin` binaries
/// (bins legitimately own `std::env`/`std::process`), and build output.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        for sub in ["src", "benches"] {
            let tree = dir.join(sub);
            if tree.is_dir() {
                walk(&tree, root, &mut out)?;
            }
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if matches!(name.as_str(), "bin" | "tests" | "fixtures" | "target") {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Lints the whole workspace under `root`.
pub fn run_lint(root: &Path) -> io::Result<LintReport> {
    let files = workspace_files(root)?;
    let mut violations = Vec::new();
    for (rel, path) in &files {
        let source = fs::read_to_string(path)?;
        violations.extend(lint_source(rel, &source));
    }
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(LintReport {
        violations,
        files_scanned: files.len(),
    })
}
