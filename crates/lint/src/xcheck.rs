//! X-series — cross-crate exhaustiveness checks.
//!
//! These diff enum *definitions* against their handler surfaces in other
//! crates, so a new variant cannot ship half-wired:
//!
//! | Rule | Definition | Must appear in |
//! |------|-----------|----------------|
//! | X01  | `Event` (crates/simcore/src/telemetry.rs) | a span-builder arm in crates/simcore/src/span.rs |
//! | X02  | `Event` | an explainer mapping in crates/cluster/src/explain.rs |
//! | X03  | `Event` (as its snake_case `kind()` tag) | a table row in docs/TELEMETRY_SCHEMA.md |
//! | X04  | `Fault` (crates/cluster/src/world.rs) | an injector arm in crates/cluster/src/chaos.rs *and* a backticked name in DESIGN.md §6 |
//!
//! Missing-handler findings anchor at the enum variant's definition line
//! (that is where the fix starts); *stale* findings — a handler arm or doc
//! row naming a variant that no longer exists — anchor at the handler/doc
//! line. Handler presence is checked by token sequence (`Enum :: Variant`),
//! not by match-arm structure, so helper functions and `if let` chains
//! count as handling; the real exhaustiveness backstop is that the handler
//! matches themselves are written without `_ =>` catch-alls, which the
//! compiler then enforces.

use std::collections::BTreeSet;

use crate::lexer::Tok;
use crate::rules::Violation;
use crate::symbols::FileUnit;

/// Where the `Event` enum is defined.
pub const EVENT_DEF: (&str, &str) = ("crates/simcore/src/telemetry.rs", "Event");
/// Where the `Fault` enum is defined.
pub const FAULT_DEF: (&str, &str) = ("crates/cluster/src/world.rs", "Fault");
/// The span-builder surface (X01).
pub const SPAN_FILE: &str = "crates/simcore/src/span.rs";
/// The explainer surface (X02).
pub const EXPLAIN_FILE: &str = "crates/cluster/src/explain.rs";
/// The telemetry schema doc (X03).
pub const SCHEMA_DOC: &str = "docs/TELEMETRY_SCHEMA.md";
/// The chaos injector surface (X04).
pub const CHAOS_FILE: &str = "crates/cluster/src/chaos.rs";
/// The fault-table doc (X04).
pub const DESIGN_DOC: &str = "DESIGN.md";

/// A documentation file handed to the X-series (not lexed as Rust).
#[derive(Debug)]
pub struct DocFile {
    /// Workspace-relative path.
    pub rel: String,
    /// Raw text.
    pub text: String,
}

/// Converts a CamelCase variant name to its snake_case `kind()` tag.
pub fn snake_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn find_unit<'a>(units: &'a [FileUnit], rel: &str) -> Option<&'a FileUnit> {
    units.iter().find(|u| u.rel == rel)
}

/// All `Enum :: Name` references in a unit, as (name, line) pairs.
fn enum_refs(unit: &FileUnit, enum_name: &str) -> Vec<(String, u32)> {
    let toks = &unit.lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if let Tok::Ident(a) = &toks[i].tok {
            if a == enum_name && toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::PathSep) {
                if let Some(Tok::Ident(b)) = toks.get(i + 2).map(|t| &t.tok) {
                    if b.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                        out.push((b.clone(), toks[i + 2].line));
                    }
                }
            }
        }
    }
    out
}

/// Backticked tokens in a markdown doc, as (text, line) pairs.
fn backticked(text: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let mut rest = line;
        let mut consumed = 0usize;
        while let Some(open) = rest.find('`') {
            let after = &rest[open + 1..];
            let Some(close) = after.find('`') else {
                break;
            };
            out.push((after[..close].to_string(), (ln + 1) as u32));
            let step = open + 1 + close + 1;
            consumed += step;
            rest = &line[consumed..];
        }
    }
    out
}

/// Runs every X-series check over the units and docs.
pub fn run_xchecks(units: &[FileUnit], docs: &[DocFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    // --- Event-based checks (X01/X02/X03) ---
    if let Some(def_unit) = find_unit(units, EVENT_DEF.0) {
        if let Some(event) = def_unit.parsed.enum_named(EVENT_DEF.1) {
            let variants: BTreeSet<&str> = event.variants.iter().map(|v| v.name.as_str()).collect();
            for (rule, surface, what) in [
                ("X01", SPAN_FILE, "span-builder arm"),
                ("X02", EXPLAIN_FILE, "explainer mapping"),
            ] {
                let Some(surface_unit) = find_unit(units, surface) else {
                    continue;
                };
                let refs = enum_refs(surface_unit, EVENT_DEF.1);
                let handled: BTreeSet<&str> = refs.iter().map(|(n, _)| n.as_str()).collect();
                for v in &event.variants {
                    if !handled.contains(v.name.as_str()) {
                        out.push(Violation {
                            rule,
                            file: EVENT_DEF.0.to_string(),
                            line: v.line,
                            message: format!("`Event::{}` has no {what} in {surface}", v.name),
                        });
                    }
                }
                let mut reported: BTreeSet<&str> = BTreeSet::new();
                for (name, line) in &refs {
                    if !variants.contains(name.as_str()) && reported.insert(name) {
                        out.push(Violation {
                            rule,
                            file: surface.to_string(),
                            line: *line,
                            message: format!(
                                "stale reference `Event::{name}` — no such variant in {}",
                                EVENT_DEF.0
                            ),
                        });
                    }
                }
            }
            // X03: every kind tag needs a schema-doc row; every backticked
            // snake_case tag in the doc must still be a variant.
            if let Some(doc) = docs.iter().find(|d| d.rel == SCHEMA_DOC) {
                let ticked = backticked(&doc.text);
                let doc_kinds: BTreeSet<&str> = ticked.iter().map(|(t, _)| t.as_str()).collect();
                let kinds: BTreeSet<String> =
                    event.variants.iter().map(|v| snake_case(&v.name)).collect();
                for v in &event.variants {
                    let kind = snake_case(&v.name);
                    if !doc_kinds.contains(kind.as_str()) {
                        out.push(Violation {
                            rule: "X03",
                            file: EVENT_DEF.0.to_string(),
                            line: v.line,
                            message: format!(
                                "event kind `{kind}` (`Event::{}`) has no row in {SCHEMA_DOC}",
                                v.name
                            ),
                        });
                    }
                }
                let mut reported: BTreeSet<&str> = BTreeSet::new();
                for (t, line) in &ticked {
                    let looks_like_kind = !t.is_empty()
                        && t.bytes().all(|b| b.is_ascii_lowercase() || b == b'_')
                        && t.contains('_');
                    if looks_like_kind && !kinds.contains(t.as_str()) && reported.insert(t) {
                        out.push(Violation {
                            rule: "X03",
                            file: SCHEMA_DOC.to_string(),
                            line: *line,
                            message: format!("stale schema row `{t}` — no matching Event variant"),
                        });
                    }
                }
            } else {
                out.push(Violation {
                    rule: "X03",
                    file: EVENT_DEF.0.to_string(),
                    line: event.line,
                    message: format!("{SCHEMA_DOC} is missing — every event kind needs a row"),
                });
            }
        }
    }
    // --- Fault-based checks (X04) ---
    if let Some(def_unit) = find_unit(units, FAULT_DEF.0) {
        if let Some(fault) = def_unit.parsed.enum_named(FAULT_DEF.1) {
            let variants: BTreeSet<&str> = fault.variants.iter().map(|v| v.name.as_str()).collect();
            if let Some(chaos) = find_unit(units, CHAOS_FILE) {
                let refs = enum_refs(chaos, FAULT_DEF.1);
                let handled: BTreeSet<&str> = refs.iter().map(|(n, _)| n.as_str()).collect();
                for v in &fault.variants {
                    if !handled.contains(v.name.as_str()) {
                        out.push(Violation {
                            rule: "X04",
                            file: FAULT_DEF.0.to_string(),
                            line: v.line,
                            message: format!(
                                "`Fault::{}` has no injector arm in {CHAOS_FILE}",
                                v.name
                            ),
                        });
                    }
                }
                let mut reported: BTreeSet<&str> = BTreeSet::new();
                for (name, line) in &refs {
                    if !variants.contains(name.as_str()) && reported.insert(name) {
                        out.push(Violation {
                            rule: "X04",
                            file: CHAOS_FILE.to_string(),
                            line: *line,
                            message: format!(
                                "stale reference `Fault::{name}` — no such variant in {}",
                                FAULT_DEF.0
                            ),
                        });
                    }
                }
            }
            if let Some(doc) = docs.iter().find(|d| d.rel == DESIGN_DOC) {
                // Doc rows name variants with their payload signature
                // (`NodeCrash(node, down_for)`); strip it before matching.
                let ticked: BTreeSet<String> = backticked(&doc.text)
                    .into_iter()
                    .map(|(t, _)| t.split('(').next().unwrap_or("").to_string())
                    .collect();
                for v in &fault.variants {
                    if !ticked.contains(&v.name) {
                        out.push(Violation {
                            rule: "X04",
                            file: FAULT_DEF.0.to_string(),
                            line: v.line,
                            message: format!(
                                "`Fault::{}` has no fault-table row in {DESIGN_DOC}",
                                v.name
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn unit(rel: &str, src: &str) -> FileUnit {
        let lexed = lex(src);
        let parsed = parse(&lexed.tokens);
        FileUnit {
            rel: rel.to_string(),
            lexed,
            parsed,
        }
    }

    #[test]
    fn snake_case_matches_kind_tags() {
        assert_eq!(snake_case("JobSubmitted"), "job_submitted");
        assert_eq!(snake_case("RpcGaveUp"), "rpc_gave_up");
        assert_eq!(snake_case("BlockRead"), "block_read");
    }

    #[test]
    fn missing_span_arm_is_x01_at_the_variant() {
        let units = vec![
            unit(
                EVENT_DEF.0,
                "pub enum Event {\n    JobSubmitted,\n    BlockRead,\n}\n",
            ),
            unit(
                SPAN_FILE,
                "fn handle(e: &Event) { match e { Event::JobSubmitted => {} _ => {} } }\n",
            ),
            unit(EXPLAIN_FILE, "fn fold(e: &Event) { match e { Event::JobSubmitted => {} Event::BlockRead => {} _ => {} } }\n"),
        ];
        let docs = vec![DocFile {
            rel: SCHEMA_DOC.to_string(),
            text: "| `job_submitted` | x |\n| `block_read` | x |\n".into(),
        }];
        let v = run_xchecks(&units, &docs);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "X01");
        assert_eq!(v[0].file, EVENT_DEF.0);
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("BlockRead"));
    }

    #[test]
    fn stale_arm_is_flagged_at_the_surface() {
        let units = vec![
            unit(EVENT_DEF.0, "pub enum Event { JobSubmitted }\n"),
            unit(
                SPAN_FILE,
                "fn handle(e: &Event) { if let Event::JobSubmitted = e {}\nlet _ = Event::Removed; }\n",
            ),
            unit(EXPLAIN_FILE, "fn fold(e: &Event) { let _ = Event::JobSubmitted; }\n"),
        ];
        let docs = vec![DocFile {
            rel: SCHEMA_DOC.to_string(),
            text: "| `job_submitted` | x |\n".into(),
        }];
        let v = run_xchecks(&units, &docs);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "X01");
        assert_eq!(v[0].file, SPAN_FILE);
        assert!(v[0].message.contains("Removed"));
    }

    #[test]
    fn schema_doc_rows_are_diffed_both_ways() {
        let units = vec![
            unit(EVENT_DEF.0, "pub enum Event { JobSubmitted, BlockRead }\n"),
            unit(
                SPAN_FILE,
                "fn h(e: &Event) { let _ = (Event::JobSubmitted, Event::BlockRead); }\n",
            ),
            unit(
                EXPLAIN_FILE,
                "fn f(e: &Event) { let _ = (Event::JobSubmitted, Event::BlockRead); }\n",
            ),
        ];
        let docs = vec![DocFile {
            rel: SCHEMA_DOC.to_string(),
            text: "| `job_submitted` | x |\n| `stale_kind` | gone |\n".into(),
        }];
        let v = run_xchecks(&units, &docs);
        let rules: Vec<(&str, &str)> = v.iter().map(|x| (x.rule, x.file.as_str())).collect();
        // block_read missing from doc + stale_kind no longer a variant.
        assert!(rules.contains(&("X03", EVENT_DEF.0)));
        assert!(rules.contains(&("X03", SCHEMA_DOC)));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn fault_checks_cover_injector_and_design_doc() {
        let units = vec![
            unit(
                FAULT_DEF.0,
                "pub enum Fault {\n    MasterFail,\n    NodeCrash(NodeId, SimDuration),\n}\n",
            ),
            unit(CHAOS_FILE, "fn gen() -> Fault { Fault::MasterFail }\n"),
        ];
        let docs = vec![DocFile {
            rel: DESIGN_DOC.to_string(),
            text: "| `MasterFail` | kills the master |\n\
                   A doc row may carry the payload signature:\n\
                   `NodeCrash(node, down_for)` reboots after the outage.\n"
                .into(),
        }];
        let v = run_xchecks(&units, &docs);
        // NodeCrash has a doc row (payload form counts) but no injector arm.
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "X04");
        assert!(v[0].message.contains("NodeCrash"));
        assert!(v[0].message.contains("injector arm"));
    }

    #[test]
    fn fully_wired_enums_are_clean() {
        let units = vec![
            unit(EVENT_DEF.0, "pub enum Event { JobSubmitted }\n"),
            unit(
                SPAN_FILE,
                "fn h(e: &Event) { let _ = Event::JobSubmitted; }\n",
            ),
            unit(
                EXPLAIN_FILE,
                "fn f(e: &Event) { let _ = Event::JobSubmitted; }\n",
            ),
            unit(FAULT_DEF.0, "pub enum Fault { MasterFail }\n"),
            unit(CHAOS_FILE, "fn g() -> Fault { Fault::MasterFail }\n"),
        ];
        let docs = vec![
            DocFile {
                rel: SCHEMA_DOC.to_string(),
                text: "| `job_submitted` | x |\n".into(),
            },
            DocFile {
                rel: DESIGN_DOC.to_string(),
                text: "`MasterFail` row\n".into(),
            },
        ];
        assert!(run_xchecks(&units, &docs).is_empty());
    }
}
