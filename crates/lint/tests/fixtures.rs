//! Fixture-driven tests: one violating and one clean fixture per rule,
//! plus a malformed allow. Fixtures live under `tests/fixtures/` (which
//! the workspace scan skips) and are linted under synthetic in-scope
//! paths, so the expectations here pin both the matchers and the scoping.

use std::fs;
use std::path::Path;

use ignem_lint::lint_source;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lints a fixture as if it lived at `rel`, returning (rule, line) pairs.
fn hits(name: &str, rel: &str) -> Vec<(String, u32)> {
    lint_source(rel, &fixture(name))
        .into_iter()
        .map(|v| (v.rule.to_string(), v.line))
        .collect()
}

#[test]
fn d01_violations_are_found() {
    assert_eq!(
        hits("d01_violate.rs", "crates/simcore/src/fake.rs"),
        vec![("D01".into(), 3), ("D01".into(), 6), ("D01".into(), 7)]
    );
}

#[test]
fn d01_clean_with_allow_passes() {
    assert_eq!(hits("d01_clean.rs", "crates/simcore/src/fake.rs"), vec![]);
}

#[test]
fn d02_violations_are_found() {
    assert_eq!(
        hits("d02_violate.rs", "crates/cluster/src/fake.rs"),
        vec![("D02".into(), 10), ("D02".into(), 14)]
    );
}

#[test]
fn d02_clean_with_point_lookups_and_allow_passes() {
    assert_eq!(hits("d02_clean.rs", "crates/cluster/src/fake.rs"), vec![]);
}

#[test]
fn d03_violations_are_found() {
    assert_eq!(
        hits("d03_violate.rs", "crates/dfs/src/fake.rs"),
        vec![("D03".into(), 3), ("D03".into(), 6)]
    );
}

#[test]
fn d03_clean_passes_and_rng_module_is_exempt() {
    assert_eq!(hits("d03_clean.rs", "crates/dfs/src/fake.rs"), vec![]);
    // The same violating source is fine inside the sanctioned RNG module
    // and inside a non-sim crate.
    assert_eq!(hits("d03_violate.rs", "crates/simcore/src/rng.rs"), vec![]);
    assert_eq!(hits("d03_violate.rs", "crates/lint/src/fake.rs"), vec![]);
}

#[test]
fn p01_violations_are_found_only_on_fault_paths() {
    assert_eq!(
        hits("p01_violate.rs", "crates/netsim/src/rpc.rs"),
        vec![("P01".into(), 3), ("P01".into(), 6)]
    );
    // The same unwraps outside the named fault-path files are not P01.
    assert_eq!(hits("p01_violate.rs", "crates/netsim/src/fake.rs"), vec![]);
}

#[test]
fn p01_clean_with_recovery_allow_and_test_code_passes() {
    assert_eq!(hits("p01_clean.rs", "crates/ignem/src/slave.rs"), vec![]);
}

#[test]
fn f01_violations_are_found() {
    assert_eq!(
        hits("f01_violate.rs", "crates/workloads/src/fake.rs"),
        vec![("F01".into(), 3), ("F01".into(), 6)]
    );
}

#[test]
fn f01_clean_total_cmp_and_ord_boilerplate_pass() {
    assert_eq!(hits("f01_clean.rs", "crates/workloads/src/fake.rs"), vec![]);
}

#[test]
fn t01_violations_are_found() {
    assert_eq!(
        hits("t01_violate.rs", "crates/cluster/src/fake.rs"),
        vec![
            ("T01".into(), 3),
            ("T01".into(), 6),
            ("T01".into(), 7),
            ("T01".into(), 8)
        ]
    );
    // The sanctioned stderr sink and non-sim crates are out of scope.
    assert_eq!(
        hits("t01_violate.rs", "crates/simcore/src/trace.rs"),
        vec![]
    );
    assert_eq!(hits("t01_violate.rs", "crates/bench/src/report.rs"), vec![]);
}

#[test]
fn t01_clean_with_allow_and_test_code_passes() {
    assert_eq!(hits("t01_clean.rs", "crates/cluster/src/fake.rs"), vec![]);
}

#[test]
fn empty_reason_reports_a00_and_does_not_suppress() {
    assert_eq!(
        hits("a00_bad_allow.rs", "crates/simcore/src/fake.rs"),
        vec![("A00".into(), 4), ("D01".into(), 5)]
    );
}

#[test]
fn json_report_round_trips_the_violations() {
    let report = ignem_lint::LintReport {
        violations: lint_source("crates/simcore/src/fake.rs", &fixture("d01_violate.rs")),
        files_scanned: 1,
    };
    let json = report.to_json();
    assert!(json.contains("\"violation_count\":3"));
    assert!(json.contains("\"rule\":\"D01\""));
    assert!(json.contains("\"file\":\"crates/simcore/src/fake.rs\""));
    assert!(json.contains("\"line\":3"));
}
