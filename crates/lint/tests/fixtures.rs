//! Fixture-driven tests: one violating and one clean fixture per rule,
//! plus a malformed allow. Fixtures live under `tests/fixtures/` (which
//! the workspace scan skips) and are linted under synthetic in-scope
//! paths, so the expectations here pin both the matchers and the scoping.

use std::fs;
use std::path::Path;

use ignem_lint::lint_source;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lints a fixture as if it lived at `rel`, returning (rule, line) pairs.
fn hits(name: &str, rel: &str) -> Vec<(String, u32)> {
    lint_source(rel, &fixture(name))
        .into_iter()
        .map(|v| (v.rule.to_string(), v.line))
        .collect()
}

#[test]
fn d01_violations_are_found() {
    assert_eq!(
        hits("d01_violate.rs", "crates/simcore/src/fake.rs"),
        vec![("D01".into(), 3), ("D01".into(), 6), ("D01".into(), 7)]
    );
}

#[test]
fn d01_clean_with_allow_passes() {
    assert_eq!(hits("d01_clean.rs", "crates/simcore/src/fake.rs"), vec![]);
}

#[test]
fn d02_violations_are_found() {
    assert_eq!(
        hits("d02_violate.rs", "crates/cluster/src/fake.rs"),
        vec![("D02".into(), 10), ("D02".into(), 14)]
    );
}

#[test]
fn d02_clean_with_point_lookups_and_allow_passes() {
    assert_eq!(hits("d02_clean.rs", "crates/cluster/src/fake.rs"), vec![]);
}

#[test]
fn d03_violations_are_found() {
    assert_eq!(
        hits("d03_violate.rs", "crates/dfs/src/fake.rs"),
        vec![("D03".into(), 3), ("D03".into(), 6)]
    );
}

#[test]
fn d03_clean_passes_and_rng_module_is_exempt() {
    assert_eq!(hits("d03_clean.rs", "crates/dfs/src/fake.rs"), vec![]);
    // The same violating source is fine inside the sanctioned RNG module
    // and inside a non-sim crate.
    assert_eq!(hits("d03_violate.rs", "crates/simcore/src/rng.rs"), vec![]);
    assert_eq!(hits("d03_violate.rs", "crates/lint/src/fake.rs"), vec![]);
}

#[test]
fn p01_violations_are_found_only_on_fault_paths() {
    assert_eq!(
        hits("p01_violate.rs", "crates/netsim/src/rpc.rs"),
        vec![("P01".into(), 3), ("P01".into(), 6)]
    );
    // The same unwraps outside the named fault-path files are not P01.
    assert_eq!(hits("p01_violate.rs", "crates/netsim/src/fake.rs"), vec![]);
}

#[test]
fn p01_clean_with_recovery_allow_and_test_code_passes() {
    assert_eq!(hits("p01_clean.rs", "crates/ignem/src/slave.rs"), vec![]);
}

#[test]
fn f01_violations_are_found() {
    assert_eq!(
        hits("f01_violate.rs", "crates/workloads/src/fake.rs"),
        vec![("F01".into(), 3), ("F01".into(), 6)]
    );
}

#[test]
fn f01_clean_total_cmp_and_ord_boilerplate_pass() {
    assert_eq!(hits("f01_clean.rs", "crates/workloads/src/fake.rs"), vec![]);
}

#[test]
fn t01_violations_are_found() {
    assert_eq!(
        hits("t01_violate.rs", "crates/cluster/src/fake.rs"),
        vec![
            ("T01".into(), 3),
            ("T01".into(), 6),
            ("T01".into(), 7),
            ("T01".into(), 8)
        ]
    );
    // The sanctioned stderr sink and non-sim crates are out of scope.
    assert_eq!(
        hits("t01_violate.rs", "crates/simcore/src/trace.rs"),
        vec![]
    );
    assert_eq!(hits("t01_violate.rs", "crates/bench/src/report.rs"), vec![]);
}

#[test]
fn t01_clean_with_allow_and_test_code_passes() {
    assert_eq!(hits("t01_clean.rs", "crates/cluster/src/fake.rs"), vec![]);
}

#[test]
fn empty_reason_reports_a00_and_does_not_suppress() {
    assert_eq!(
        hits("a00_bad_allow.rs", "crates/simcore/src/fake.rs"),
        vec![("A00".into(), 4), ("D01".into(), 5)]
    );
}

#[test]
fn json_report_round_trips_the_violations() {
    let report = ignem_lint::LintReport {
        violations: lint_source("crates/simcore/src/fake.rs", &fixture("d01_violate.rs")),
        files_scanned: 1,
    };
    let json = report.to_json();
    assert!(json.contains("\"violation_count\":3"));
    assert!(json.contains("\"rule\":\"D01\""));
    assert!(json.contains("\"file\":\"crates/simcore/src/fake.rs\""));
    assert!(json.contains("\"line\":3"));
}

// --- ignem-analyze parser-pass fixtures (D10, P02, Q01, X-series) ---

/// Like `hits`, but keeps only one rule's findings (token rules such as
/// D01 fire on the same fixtures and are pinned by their own tests).
fn rule_hits(name: &str, rel: &str, rule: &str) -> Vec<u32> {
    hits(name, rel)
        .into_iter()
        .filter(|(r, _)| r == rule)
        .map(|(_, l)| l)
        .collect()
}

/// Runs the cross-file analysis passes over fixture units + inline docs,
/// returning (rule, file, line) triples sorted for stable comparison.
fn analysis_hits(files: &[(&str, &str)], docs: &[(&str, &str)]) -> Vec<(String, String, u32)> {
    let units: Vec<ignem_lint::FileUnit> = files
        .iter()
        .map(|(rel, name)| ignem_lint::load_unit(rel, &fixture(name)))
        .collect();
    let docs: Vec<ignem_lint::DocFile> = docs
        .iter()
        .map(|(rel, text)| ignem_lint::DocFile {
            rel: (*rel).to_string(),
            text: (*text).to_string(),
        })
        .collect();
    let mut out: Vec<(String, String, u32)> = ignem_lint::analyze_units(&units, &docs)
        .into_iter()
        .map(|v| (v.rule.to_string(), v.file, v.line))
        .collect();
    out.sort();
    out
}

#[test]
fn d10_taint_reaches_all_three_sink_classes() {
    assert_eq!(
        rule_hits("d10_violate.rs", "crates/simcore/src/fake.rs", "D10"),
        vec![8, 14, 19]
    );
}

#[test]
fn d10_sim_time_and_cleared_taint_are_clean() {
    assert_eq!(
        rule_hits("d10_clean.rs", "crates/simcore/src/fake.rs", "D10"),
        Vec::<u32>::new()
    );
}

#[test]
fn d10_allow_suppresses_the_sink() {
    assert_eq!(
        rule_hits("d10_allow.rs", "crates/simcore/src/fake.rs", "D10"),
        Vec::<u32>::new()
    );
}

#[test]
fn p02_panics_on_fault_paths_are_found() {
    let world = "crates/cluster/src/world.rs";
    assert_eq!(
        analysis_hits(&[(world, "p02_violate.rs")], &[]),
        vec![
            ("P02".into(), world.into(), 14),
            ("P02".into(), world.into(), 16),
        ]
    );
}

#[test]
fn p02_recovery_and_unreachable_panics_are_clean() {
    assert_eq!(
        analysis_hits(&[("crates/cluster/src/world.rs", "p02_clean.rs")], &[]),
        vec![]
    );
}

#[test]
fn p02_allow_suppresses_reachable_panics() {
    assert_eq!(
        analysis_hits(&[("crates/cluster/src/world.rs", "p02_allow.rs")], &[]),
        vec![]
    );
}

#[test]
fn q01_fault_path_growth_without_drain_is_found() {
    let world = "crates/cluster/src/world.rs";
    assert_eq!(
        analysis_hits(&[(world, "q01_violate.rs")], &[]),
        vec![("Q01".into(), world.into(), 10)]
    );
}

#[test]
fn q01_drained_field_is_clean() {
    assert_eq!(
        analysis_hits(&[("crates/cluster/src/world.rs", "q01_clean.rs")], &[]),
        vec![]
    );
}

#[test]
fn q01_allow_suppresses_the_growth() {
    assert_eq!(
        analysis_hits(&[("crates/cluster/src/world.rs", "q01_allow.rs")], &[]),
        vec![]
    );
}

#[test]
fn x_series_flags_unwired_variants_everywhere() {
    let telemetry = "crates/simcore/src/telemetry.rs";
    let world = "crates/cluster/src/world.rs";
    let got = analysis_hits(
        &[
            (telemetry, "x_event_violate.rs"),
            ("crates/simcore/src/span.rs", "x_span_partial.rs"),
            ("crates/cluster/src/explain.rs", "x_explain_partial.rs"),
            (world, "x_fault_violate.rs"),
            ("crates/cluster/src/chaos.rs", "x_chaos_partial.rs"),
        ],
        &[
            ("docs/TELEMETRY_SCHEMA.md", "| `covered` | x |\n"),
            ("DESIGN.md", "* `Wired` — handled.\n"),
        ],
    );
    assert_eq!(
        got,
        vec![
            ("X01".into(), telemetry.into(), 6),
            ("X02".into(), telemetry.into(), 6),
            ("X03".into(), telemetry.into(), 6),
            ("X04".into(), world.into(), 6),
            ("X04".into(), world.into(), 6),
        ]
    );
}

#[test]
fn x_series_fully_wired_fixture_is_clean() {
    assert_eq!(
        analysis_hits(
            &[
                ("crates/simcore/src/telemetry.rs", "x_event_clean.rs"),
                ("crates/simcore/src/span.rs", "x_span_partial.rs"),
                ("crates/cluster/src/explain.rs", "x_explain_partial.rs"),
            ],
            &[("docs/TELEMETRY_SCHEMA.md", "| `covered` | x |\n")],
        ),
        vec![]
    );
}

#[test]
fn x01_allow_on_the_variant_line_suppresses() {
    assert_eq!(
        analysis_hits(
            &[
                ("crates/simcore/src/telemetry.rs", "x_event_allow.rs"),
                ("crates/simcore/src/span.rs", "x_span_partial.rs"),
                ("crates/cluster/src/explain.rs", "x_explain_full.rs"),
            ],
            &[(
                "docs/TELEMETRY_SCHEMA.md",
                "| `covered` | x |\n| `missing` | x |\n",
            )],
        ),
        vec![]
    );
}

#[test]
fn filter_to_files_matches_the_full_run_on_the_subset() {
    use std::collections::BTreeSet;
    let a = "crates/simcore/src/fake_a.rs";
    let b = "crates/simcore/src/fake_b.rs";
    let mut violations = lint_source(a, &fixture("d01_violate.rs"));
    violations.extend(lint_source(b, &fixture("d01_violate.rs")));
    let full = ignem_lint::LintReport {
        violations,
        files_scanned: 2,
    };
    let subset: BTreeSet<String> = [a.to_string()].into();
    let narrowed = full.filter_to_files(&subset);
    let expected: Vec<_> = full
        .violations
        .iter()
        .filter(|v| v.file == a)
        .cloned()
        .collect();
    assert!(!expected.is_empty());
    assert_eq!(narrowed.violations, expected);
    assert_eq!(narrowed.files_scanned, full.files_scanned);
}
