// D02 fixture: ordered containers (BTreeMap/BTreeSet and the dense
// IdMap/IdSet, which iterate in ascending key order by construction) may
// iterate; hash containers may not — unless justified — but point lookups
// on them are fine.
use ignem_simcore::idmap::IdMap;
use std::collections::{BTreeMap, HashMap};

fn sum() -> u64 {
    let mut ordered: BTreeMap<u32, u64> = BTreeMap::new();
    ordered.insert(1, 2);
    let mut dense: IdMap<u32, u64> = IdMap::new();
    dense.insert(3, 4);
    let lut: HashMap<u32, u64> = HashMap::new();
    let mut acc = lut.get(&1).copied().unwrap_or(0);
    for (_k, v) in &ordered {
        acc += *v;
    }
    for (_k, v) in dense.iter() {
        acc += *v;
    }
    // lint: allow(D02, reason = "order-insensitive sum, result is commutative")
    for v in lut.values() {
        acc += *v;
    }
    acc
}
