// P01 fixture: panics on an RPC/fault path.
fn deliver(x: Option<u32>) -> u32 {
    x.unwrap()
}
fn ack(y: Option<u32>) -> u32 {
    y.expect("ack missing")
}
