// D03 fixture: all randomness flows from the seeded simulation RNG.
fn draw(rng: &mut SimRng) -> u64 {
    rng.next_u64()
}
