//! X-series companion: an explainer handling only `Event::Covered`.

pub fn fold(e: &Event) {
    if let Event::Covered { .. } = e {}
}
