// F01 fixture: float ordering that panics on NaN.
fn pick(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
fn best(ys: &[f64]) -> Option<&f64> {
    ys.iter().max_by(|a, b| a.partial_cmp(b).expect("finite"))
}
