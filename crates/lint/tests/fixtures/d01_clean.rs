// D01 fixture: simulated time only, plus one justified wall-clock read.
fn now(engine: &Engine) -> SimTime {
    engine.now()
}
fn sanctioned() {
    // lint: allow(D01, reason = "bench harness timer, outside the simulation")
    let _start = std::time::Instant::now();
}
