//! X04 companion: a chaos injector generating only `Fault::Wired`.

pub fn generate() -> Fault {
    Fault::Wired
}
