// D01 fixture: wall-clock reads in simulation code.
fn measure() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_micros()
}
fn wall() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
