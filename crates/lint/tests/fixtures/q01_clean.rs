//! Q01 negative fixture: the same push, but the file also drains the
//! field.

pub struct World {
    backlog: Vec<u64>,
}

impl World {
    pub fn fail_node(&mut self, id: u64) {
        self.backlog.push(id);
    }

    pub fn drain_backlog(&mut self) {
        self.backlog.clear();
    }
}
