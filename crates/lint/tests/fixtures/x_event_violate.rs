//! X-series positive fixture: an `Event` enum (linted under the
//! telemetry.rs path) with a variant the handler surfaces miss.

pub enum Event {
    Covered { job: u64 },
    Missing { job: u64 },
}
