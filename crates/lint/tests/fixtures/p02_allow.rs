//! P02 allow fixture: reachable panics suppressed with reasoned directives.

pub struct World {
    jobs: HashMap<u64, u64>,
}

impl World {
    pub fn on_inject(&mut self, id: u64) {
        self.advance(id);
    }

    fn advance(&mut self, id: u64) {
        // lint: allow(P02, reason = "fixture: invariant holds by construction")
        let slot = self.jobs.get(&id).unwrap();
        let _ = slot;
        // lint: allow(P02, reason = "fixture: invariant holds by construction")
        let direct = self.jobs[&id];
        let _ = direct;
    }
}
