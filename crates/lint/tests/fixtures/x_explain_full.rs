//! X-series companion: an explainer handling every fixture variant.

pub fn fold(e: &Event) {
    match e {
        Event::Covered { .. } => {}
        Event::Missing { .. } => {}
    }
}
