//! D10 positive fixture: wall-clock, ambient-env, and pointer-address
//! taint each reaching a determinism sink.
use std::time::Instant;

pub fn schedule_from_wall_clock(engine: &mut Engine) {
    let t0 = Instant::now();
    let us = t0.elapsed().as_micros() as u64;
    engine.schedule_in(SimDuration::from_micros(us), Event::Tick);
}

pub fn seed_from_env() -> SimRng {
    let raw = std::env::var("IGNEM_SEED").unwrap_or_default();
    let seed = raw.len() as u64;
    SimRng::with_seed(seed)
}

pub fn hash_pointer(v: &u64, state: &mut SomeHasher) {
    let addr = v as *const u64 as usize;
    addr.hash(state);
}
