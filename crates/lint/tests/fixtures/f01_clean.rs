// F01 fixture: total order over floats, and Ord boilerplate is not a hit.
fn pick(xs: &mut [f64]) {
    xs.sort_by(f64::total_cmp);
}
impl PartialOrd for Wrapper {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
