//! X-series companion: a span builder handling only `Event::Covered`.

pub fn handle(e: &Event) {
    if let Event::Covered { .. } = e {}
}
