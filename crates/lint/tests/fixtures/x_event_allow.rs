//! X-series allow fixture: the missing span arm is suppressed with a
//! reasoned directive on the variant's definition line.

pub enum Event {
    Covered { job: u64 },
    Missing { job: u64 }, // lint: allow(X01, reason = "fixture: carries no span evidence yet")
}
