//! P02 negative fixture: the fault path recovers, and a panic in an
//! unreachable helper is out of scope.

pub struct World {
    jobs: HashMap<u64, u64>,
}

impl World {
    pub fn on_inject(&mut self, id: u64) {
        self.advance(id);
    }

    fn advance(&mut self, id: u64) {
        let Some(slot) = self.jobs.get(&id) else {
            return;
        };
        let _ = slot;
    }

    fn never_called_from_an_entry(&self) -> u64 {
        *self.jobs.get(&0).unwrap()
    }
}
