//! Q01 allow fixture: the growth is suppressed with a reasoned directive.

pub struct World {
    backlog: Vec<u64>,
}

impl World {
    pub fn fail_node(&mut self, id: u64) {
        // lint: allow(Q01, reason = "fixture: bounded by the fault plan")
        self.backlog.push(id);
    }
}
