// Library code printing directly: every macro form is a T01 hit.
fn announce(node: u32) {
    println!("node {node} up");
    let detail = 7;
    if detail > 0 {
        eprintln!("detail {detail}");
        print!("partial");
        eprint!("more");
    }
}
