// P01 fixture: recover instead of panicking, or justify the panic.
fn deliver(x: Option<u32>) -> u32 {
    let Some(v) = x else { return 0 };
    v
}
fn ack(y: Option<u32>) -> u32 {
    // lint: allow(P01, reason = "presence checked by the caller's probe")
    y.expect("ack missing")
}
#[cfg(test)]
mod tests {
    fn tests_may_panic(z: Option<u32>) -> u32 {
        z.unwrap()
    }
}
