//! Q01 positive fixture: a fault-path push with no drain anywhere in the
//! file.

pub struct World {
    backlog: Vec<u64>,
}

impl World {
    pub fn fail_node(&mut self, id: u64) {
        self.backlog.push(id);
    }
}
