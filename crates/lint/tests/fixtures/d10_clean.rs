//! D10 negative fixture: sim-time-derived scheduling and a cleared taint.

pub fn schedule_from_sim_time(engine: &mut Engine, now: SimTime) {
    let us = now.as_micros() + 500;
    engine.schedule_in(SimDuration::from_micros(us), Event::Tick);
}

pub fn taint_cleared(engine: &mut Engine) {
    let mut us = std::env::var("HOME").map(|s| s.len() as u64).unwrap_or(0);
    us = 1000;
    engine.schedule_in(SimDuration::from_micros(us), Event::Tick);
}
