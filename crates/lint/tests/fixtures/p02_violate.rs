//! P02 positive fixture: a panic and a map-field index reachable from a
//! fault-path entry point (linted under the world.rs path).

pub struct World {
    jobs: HashMap<u64, u64>,
}

impl World {
    pub fn on_inject(&mut self, id: u64) {
        self.advance(id);
    }

    fn advance(&mut self, id: u64) {
        let slot = self.jobs.get(&id).unwrap();
        let _ = slot;
        let direct = self.jobs[&id];
        let _ = direct;
    }
}
