// A00 fixture: an allow with an empty reason both fails to parse and
// fails to suppress the violation underneath it.
fn measure() -> u128 {
    // lint: allow(D01, reason = "")
    let start = std::time::Instant::now();
    start.elapsed().as_micros()
}
