//! D10 allow fixture: the sink is suppressed with a reasoned directive.
use std::time::Instant;

pub fn sanctioned(engine: &mut Engine) {
    let t0 = Instant::now();
    let us = t0.elapsed().as_micros() as u64;
    // lint: allow(D10, reason = "fixture: sanctioned wall-clock scheduling")
    engine.schedule_in(SimDuration::from_micros(us), Event::Tick);
}
