//! X-series negative fixture: every variant is fully wired.

pub enum Event {
    Covered { job: u64 },
}
