// Clean: formatting without printing, a justified allow, and test code.
fn render(node: u32) -> String {
    format!("node {node} up")
}

fn debug_dump(detail: u32) {
    eprintln!("detail {detail}"); // lint: allow(T01, reason = "gated debug dump")
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_freely() {
        println!("tests may print");
    }
}
