//! X04 positive fixture: a `Fault` enum (linted under the world.rs path)
//! with a variant the chaos injector and DESIGN.md both miss.

pub enum Fault {
    Wired,
    Loose,
}
