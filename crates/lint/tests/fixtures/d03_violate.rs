// D03 fixture: ambient environment and process control in simulation code.
fn seed_from_env() -> String {
    std::env::var("IGNEM_SEED").unwrap_or_default()
}
fn bail() {
    std::process::exit(1);
}
