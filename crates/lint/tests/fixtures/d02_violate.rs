// D02 fixture: iterating hash containers in simulation code.
use std::collections::{HashMap, HashSet};

struct State {
    owners: HashMap<u32, u64>,
}

fn sum(state: &State) -> u64 {
    let mut acc = 0;
    for (_k, v) in state.owners.iter() {
        acc += *v;
    }
    let seen: HashSet<u32> = HashSet::new();
    for x in &seen {
        acc += u64::from(*x);
    }
    acc
}
