//! Tier-1 self-check: the workspace at HEAD must be clean under the full
//! ignem-analyze run (token rules + taint + cross-crate + reachability),
//! measured against the committed baseline. This is the test that makes
//! the determinism rules load-bearing — a PR that introduces a wall-clock
//! read, an unwired `Event` variant, or a panic on a fault path fails
//! `cargo test` locally, not just the CI analyze step.
//!
//! The baseline is diffed in both directions: a finding missing from the
//! baseline is a regression, and a baseline entry that no longer fires is
//! stale and must be removed (so the accepted-findings list can only
//! shrink).

use std::fs;

#[test]
fn workspace_is_clean_against_the_committed_baseline() {
    let root = ignem_lint::default_root();
    let report = ignem_lint::run_analysis(&root).expect("scan workspace");
    assert!(
        report.files_scanned > 40,
        "suspiciously few files scanned ({}); was the scan rooted correctly?",
        report.files_scanned
    );
    let text = fs::read_to_string(root.join("ANALYZE_BASELINE.json"))
        .expect("read ANALYZE_BASELINE.json at the workspace root");
    let baseline = ignem_lint::parse_baseline(&text).expect("parse baseline");
    let diff = ignem_lint::baseline_diff(&report, &baseline);
    let new: Vec<String> = diff
        .new
        .iter()
        .map(|v| format!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message))
        .collect();
    let stale: Vec<String> = diff
        .stale
        .iter()
        .map(|b| format!("{}:{}: [{}]", b.file, b.line, b.rule))
        .collect();
    assert!(
        diff.is_clean(),
        "analysis differs from ANALYZE_BASELINE.json\nnew findings:\n{}\nstale baseline entries (remove them):\n{}",
        new.join("\n"),
        stale.join("\n")
    );
}
