//! Tier-1 self-check: the workspace at HEAD must be lint-clean. This is
//! the test that makes the determinism rules load-bearing — a PR that
//! introduces a wall-clock read or a hash-map sweep into a sim crate
//! fails `cargo test` locally, not just the CI lint step.

#[test]
fn workspace_is_lint_clean() {
    let root = ignem_lint::default_root();
    let report = ignem_lint::run_lint(&root).expect("scan workspace");
    assert!(
        report.files_scanned > 40,
        "suspiciously few files scanned ({}); was the scan rooted correctly?",
        report.files_scanned
    );
    let rendered: Vec<String> = report
        .violations
        .iter()
        .map(|v| format!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message))
        .collect();
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
}
