//! Job specifications.
//!
//! A [`JobSpec`] describes one MapReduce-style job the way the SWIM trace
//! does: input bytes (as DFS files), shuffle bytes, output bytes, plus
//! compute rates that determine how much non-IO work the tasks do. Hive
//! queries are modelled as a sequence of such jobs (see
//! `ignem-workloads::tpcds`).

use ignem_core::command::EvictionMode;
use ignem_simcore::time::SimDuration;

/// Where a job's map input comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum JobInput {
    /// Cold files in the DFS — the case Ignem targets.
    DfsFiles(Vec<String>),
    /// Intermediate data of a previous stage, recently written and thus
    /// resident in the page cache (Hive stage ≥ 2). `bytes` total, split
    /// into synthetic block-sized map inputs.
    Cached(u64),
}

/// How the job-submitter interacts with Ignem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitOptions {
    /// If set, the submitter issues an Ignem migrate call for the job's
    /// input files (with this eviction mode) before submitting.
    pub migrate: Option<EvictionMode>,
    /// Artificial sleep between the migrate call and job submission —
    /// the paper's Fig. 8 *Ignem+10s* experiment. Counted in job duration.
    pub extra_lead_time: SimDuration,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        SubmitOptions {
            migrate: None,
            extra_lead_time: SimDuration::ZERO,
        }
    }
}

impl SubmitOptions {
    /// Plain HDFS submission (no migration).
    pub fn plain() -> Self {
        SubmitOptions::default()
    }

    /// Submission with an Ignem migrate call (explicit eviction).
    pub fn with_migration() -> Self {
        SubmitOptions {
            migrate: Some(EvictionMode::Explicit),
            ..SubmitOptions::default()
        }
    }
}

/// One MapReduce-style job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Human-readable name (for reports).
    pub name: String,
    /// Map-stage input.
    pub input: JobInput,
    /// Total bytes moved map → reduce (0 for map-only jobs).
    pub shuffle_bytes: u64,
    /// Total bytes the reduce stage writes back to the DFS.
    pub output_bytes: u64,
    /// Number of reduce tasks (0 = map-only job).
    pub reducers: usize,
    /// Map CPU processing rate over input bytes (bytes/s). Determines the
    /// compute portion of a map task after its input read.
    pub map_cpu_rate: f64,
    /// Reduce CPU processing rate over shuffle bytes (bytes/s).
    pub reduce_cpu_rate: f64,
    /// Submitter behaviour.
    pub submit: SubmitOptions,
}

impl JobSpec {
    /// A convenience constructor with typical CPU rates; callers override
    /// fields as needed.
    pub fn new(name: impl Into<String>, input: JobInput) -> Self {
        JobSpec {
            name: name.into(),
            input,
            shuffle_bytes: 0,
            output_bytes: 0,
            reducers: 0,
            map_cpu_rate: 200e6,
            reduce_cpu_rate: 100e6,
            submit: SubmitOptions::default(),
        }
    }

    /// Validates the spec.
    ///
    /// # Panics
    ///
    /// Panics on non-positive CPU rates, shuffle without reducers, or an
    /// empty file list.
    pub fn validate(&self) {
        assert!(
            self.map_cpu_rate.is_finite() && self.map_cpu_rate > 0.0,
            "bad map cpu rate"
        );
        assert!(
            self.reduce_cpu_rate.is_finite() && self.reduce_cpu_rate > 0.0,
            "bad reduce cpu rate"
        );
        if self.shuffle_bytes > 0 || self.output_bytes > 0 {
            assert!(self.reducers > 0, "shuffle/output requires reducers");
        }
        if let JobInput::DfsFiles(files) = &self.input {
            assert!(!files.is_empty(), "empty input file list");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_map_only_plain() {
        let j = JobSpec::new("wc", JobInput::DfsFiles(vec!["/in".into()]));
        j.validate();
        assert_eq!(j.reducers, 0);
        assert_eq!(j.submit.migrate, None);
    }

    #[test]
    fn submit_options() {
        assert!(SubmitOptions::with_migration().migrate.is_some());
        assert!(SubmitOptions::plain().migrate.is_none());
    }

    #[test]
    #[should_panic(expected = "requires reducers")]
    fn shuffle_without_reducers_rejected() {
        let mut j = JobSpec::new("bad", JobInput::Cached(100));
        j.shuffle_bytes = 10;
        j.validate();
    }

    #[test]
    #[should_panic(expected = "empty input file list")]
    fn empty_files_rejected() {
        JobSpec::new("bad", JobInput::DfsFiles(vec![])).validate();
    }
}
