//! # ignem-compute — YARN/Tez-like compute framework model
//!
//! The compute substrate of the Ignem reproduction: job specifications in
//! SWIM-trace vocabulary ([`job::JobSpec`]), the job/task state authority
//! ([`tracker::JobTracker`]) with locality-aware task choice (including the
//! migrated-replica preference Ignem exposes), per-node slot accounting
//! ([`slots::Slots`]) and the scheduler constants that generate lead-time
//! ([`config::ComputeConfig`]: 3 s heartbeats, launch overheads).
//!
//! Timing — how long each task phase takes on disks, memory and network —
//! is driven by `ignem-cluster`, which hosts these components next to the
//! storage and DFS substrates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod job;
pub mod slots;
pub mod tracker;

/// Commonly used items.
pub mod prelude {
    pub use crate::config::ComputeConfig;
    pub use crate::job::{JobInput, JobSpec, SubmitOptions};
    pub use crate::slots::Slots;
    pub use crate::tracker::{
        choose_map_task, choose_reduce_task, CompletionOutcome, JobRuntime, JobTracker, MapInput,
        TaskId, TaskKind, TaskRecord, TaskState,
    };
}

pub use config::ComputeConfig;
pub use job::{JobInput, JobSpec, SubmitOptions};
pub use slots::Slots;
pub use tracker::{JobTracker, MapInput, TaskId, TaskKind, TaskState};
