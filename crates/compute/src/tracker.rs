//! Job and task state tracking (the ResourceManager's bookkeeping).
//!
//! [`JobTracker`] owns the lifecycle of every job and task: submission,
//! map-task creation (one per input block), reduce unlocking when the map
//! stage drains, completion accounting, and node-failure re-execution. The
//! *timing* of a task's phases (launch overhead, input read, compute,
//! shuffle) is driven by the cluster simulation; the tracker is the
//! authority on *states*.

use std::collections::BTreeMap;

use ignem_core::command::JobId;
use ignem_dfs::block::BlockId;
use ignem_netsim::NodeId;
use ignem_simcore::time::SimTime;

use crate::job::JobSpec;

/// Identifies a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

/// What a task does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Reads one input block (or a cached synthetic split) and computes.
    Map {
        /// The DFS block to read, or `None` for cached intermediate input.
        block: Option<BlockId>,
        /// Input split size in bytes.
        bytes: u64,
    },
    /// Fetches its shuffle share, computes, writes its output share.
    Reduce {
        /// Reducer index within the job.
        index: usize,
    },
}

/// Lifecycle state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Waiting for a slot.
    Pending,
    /// Running on a node.
    Assigned(NodeId),
    /// Finished.
    Completed,
}

/// One task's record.
#[derive(Debug, Clone, Copy)]
pub struct TaskRecord {
    /// The task id.
    pub id: TaskId,
    /// Owning job.
    pub job: JobId,
    /// Map or reduce.
    pub kind: TaskKind,
    /// Current state.
    pub state: TaskState,
    /// When the task was assigned a slot (if ever).
    pub assigned_at: Option<SimTime>,
    /// When the task completed (if ever).
    pub completed_at: Option<SimTime>,
}

impl TaskRecord {
    /// Wall-clock task duration (assignment → completion), if completed.
    pub fn duration(&self) -> Option<f64> {
        match (self.assigned_at, self.completed_at) {
            (Some(a), Some(c)) => Some(c.duration_since(a).as_secs_f64()),
            _ => None,
        }
    }
}

/// A map input split handed to [`JobTracker::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapInput {
    /// DFS block backing the split (`None` for cached intermediates).
    pub block: Option<BlockId>,
    /// Split size in bytes.
    pub bytes: u64,
}

/// One job's runtime record.
#[derive(Debug, Clone)]
pub struct JobRuntime {
    /// The job id.
    pub id: JobId,
    /// The specification.
    pub spec: JobSpec,
    /// When the submitter was invoked (job duration is measured from here,
    /// so artificial lead-time sleeps count against the job, as in Fig. 8).
    pub submitted: SimTime,
    /// When the job became schedulable (after any submitter sleep).
    pub queued: SimTime,
    /// When the last task finished.
    pub finished: Option<SimTime>,
    /// Total map-input bytes.
    pub input_bytes: u64,
    /// Map tasks.
    pub map_tasks: Vec<TaskId>,
    /// Reduce tasks.
    pub reduce_tasks: Vec<TaskId>,
    maps_done: usize,
    reduces_done: usize,
    started_running: usize,
}

impl JobRuntime {
    /// Whether every map task has completed.
    pub fn maps_finished(&self) -> bool {
        self.maps_done == self.map_tasks.len()
    }

    /// Number of tasks that have ever been assigned (running or done) —
    /// zero means the job's first containers have not launched yet.
    pub fn started_tasks(&self) -> usize {
        self.maps_done + self.reduces_done + self.started_running
    }

    /// Whether the job has fully completed.
    pub fn is_finished(&self) -> bool {
        self.finished.is_some()
    }

    /// Job duration in seconds (submission → completion), if finished.
    pub fn duration(&self) -> Option<f64> {
        self.finished
            .map(|f| f.duration_since(self.submitted).as_secs_f64())
    }
}

/// What a task completion caused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompletionOutcome {
    /// The job's map stage just drained (reduces became schedulable).
    pub maps_finished: bool,
    /// The whole job just finished.
    pub job_finished: bool,
    /// A speculative twin attempt that lost the race and was cancelled;
    /// the host should release its slot (if running) and cancel its IO.
    pub cancelled_attempt: Option<(TaskId, Option<NodeId>)>,
}

/// Job/task state authority (see module docs).
#[derive(Debug, Clone, Default)]
pub struct JobTracker {
    jobs: BTreeMap<JobId, JobRuntime>,
    tasks: BTreeMap<TaskId, TaskRecord>,
    /// Schedulable map tasks, FIFO by job submission then split order.
    pending_maps: Vec<TaskId>,
    /// Schedulable reduce tasks.
    pending_reduces: Vec<TaskId>,
    /// Speculative execution bookkeeping: original → duplicate attempt.
    dup_of: BTreeMap<TaskId, TaskId>,
    /// Duplicate attempt → original.
    orig_of: BTreeMap<TaskId, TaskId>,
    next_task: u64,
}

impl JobTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        JobTracker::default()
    }

    /// Submits a job: creates one map task per input split; reduce tasks are
    /// created but stay gated until the map stage drains.
    ///
    /// `submitted` is the submitter invocation time, `queued` the time the
    /// job became schedulable (≥ `submitted` when the submitter slept).
    ///
    /// # Panics
    ///
    /// Panics on a duplicate job id, an invalid spec, or no input splits.
    pub fn submit(
        &mut self,
        job: JobId,
        spec: JobSpec,
        submitted: SimTime,
        queued: SimTime,
        inputs: &[MapInput],
    ) {
        assert!(!self.jobs.contains_key(&job), "duplicate job id {job}");
        assert!(queued >= submitted, "queued before submitted");
        assert!(!inputs.is_empty(), "job with no input splits");
        spec.validate();
        let mut map_tasks = Vec::with_capacity(inputs.len());
        for inp in inputs {
            let id = self.alloc_task();
            self.tasks.insert(
                id,
                TaskRecord {
                    id,
                    job,
                    kind: TaskKind::Map {
                        block: inp.block,
                        bytes: inp.bytes,
                    },
                    state: TaskState::Pending,
                    assigned_at: None,
                    completed_at: None,
                },
            );
            self.pending_maps.push(id);
            map_tasks.push(id);
        }
        let mut reduce_tasks = Vec::with_capacity(spec.reducers);
        for index in 0..spec.reducers {
            let id = self.alloc_task();
            self.tasks.insert(
                id,
                TaskRecord {
                    id,
                    job,
                    kind: TaskKind::Reduce { index },
                    state: TaskState::Pending,
                    assigned_at: None,
                    completed_at: None,
                },
            );
            reduce_tasks.push(id);
        }
        let input_bytes = inputs.iter().map(|i| i.bytes).sum();
        self.jobs.insert(
            job,
            JobRuntime {
                id: job,
                spec,
                submitted,
                queued,
                finished: None,
                input_bytes,
                map_tasks,
                reduce_tasks,
                maps_done: 0,
                reduces_done: 0,
                started_running: 0,
            },
        );
    }

    fn alloc_task(&mut self) -> TaskId {
        let id = TaskId(self.next_task);
        self.next_task += 1;
        id
    }

    /// A job's runtime record.
    ///
    /// # Panics
    ///
    /// Panics on an unknown job.
    pub fn job(&self, job: JobId) -> &JobRuntime {
        &self.jobs[&job]
    }

    /// Whether the job exists and has not finished — the scheduler-liveness
    /// answer Ignem slaves rely on for dead-job cleanup.
    pub fn is_running(&self, job: JobId) -> bool {
        self.jobs.get(&job).is_some_and(|j| !j.is_finished())
    }

    /// Number of this job's tasks currently assigned to a node (the fair
    /// scheduler's share measure).
    pub fn running_tasks(&self, job: JobId) -> usize {
        let Some(j) = self.jobs.get(&job) else {
            return 0;
        };
        j.map_tasks
            .iter()
            .chain(&j.reduce_tasks)
            .filter(|t| matches!(self.tasks[t].state, TaskState::Assigned(_)))
            .count()
    }

    /// A task's record.
    ///
    /// # Panics
    ///
    /// Panics on an unknown task.
    pub fn task(&self, task: TaskId) -> &TaskRecord {
        // lint: allow(P02, reason = "documented accessor contract: callers pass live task ids")
        &self.tasks[&task]
    }

    /// All jobs, in id order.
    pub fn jobs(&self) -> impl Iterator<Item = &JobRuntime> {
        self.jobs.values()
    }

    /// All tasks, in id order.
    pub fn tasks(&self) -> impl Iterator<Item = &TaskRecord> {
        self.tasks.values()
    }

    /// Schedulable map tasks in FIFO order.
    pub fn pending_maps(&self) -> &[TaskId] {
        &self.pending_maps
    }

    /// Schedulable reduce tasks in FIFO order.
    pub fn pending_reduces(&self) -> &[TaskId] {
        &self.pending_reduces
    }

    /// Whether any work remains anywhere.
    pub fn all_finished(&self) -> bool {
        self.jobs.values().all(|j| j.is_finished())
    }

    /// Assigns a pending task to `node`.
    ///
    /// # Panics
    ///
    /// Panics if the task is not pending.
    pub fn assign(&mut self, now: SimTime, task: TaskId, node: NodeId) {
        let rec = self.tasks.get_mut(&task).expect("unknown task");
        assert_eq!(rec.state, TaskState::Pending, "assigning non-pending task");
        rec.state = TaskState::Assigned(node);
        rec.assigned_at = Some(now);
        let job = rec.job;
        self.pending_maps.retain(|&t| t != task);
        self.pending_reduces.retain(|&t| t != task);
        if let Some(j) = self.jobs.get_mut(&job) {
            j.started_running += 1;
        }
    }

    /// Marks a task complete, unlocking reduces / finishing the job as
    /// appropriate.
    ///
    /// # Panics
    ///
    /// Panics if the task is not assigned.
    pub fn complete(&mut self, now: SimTime, task: TaskId) -> CompletionOutcome {
        let rec = self.tasks.get_mut(&task).expect("unknown task");
        let TaskState::Assigned(_) = rec.state else {
            panic!("completing task that is not running");
        };
        rec.state = TaskState::Completed;
        rec.completed_at = Some(now);
        let job_id = rec.job;
        let is_map = matches!(rec.kind, TaskKind::Map { .. });

        // Speculative-attempt resolution: whichever attempt finishes first
        // completes the *logical* task; the twin is cancelled.
        let mut cancelled_attempt = None;
        if let Some(orig) = self.orig_of.remove(&task) {
            // A duplicate won. Mark the original completed and cancel it.
            self.dup_of.remove(&orig);
            let orig_rec = self.tasks.get_mut(&orig).expect("orig attempt missing");
            if orig_rec.state == TaskState::Completed {
                // The original finished in the same instant; nothing to do.
                return CompletionOutcome::default();
            }
            let node = match orig_rec.state {
                TaskState::Assigned(n) => Some(n),
                _ => None,
            };
            orig_rec.state = TaskState::Completed;
            orig_rec.completed_at = Some(now);
            self.pending_maps.retain(|&t| t != orig);
            cancelled_attempt = Some((orig, node));
        } else if let Some(dup) = self.dup_of.remove(&task) {
            // The original won. Cancel the duplicate.
            self.orig_of.remove(&dup);
            let dup_rec = self.tasks.get_mut(&dup).expect("dup attempt missing");
            let node = match dup_rec.state {
                TaskState::Assigned(n) => Some(n),
                _ => None,
            };
            dup_rec.state = TaskState::Completed;
            dup_rec.completed_at = Some(now);
            self.pending_maps.retain(|&t| t != dup);
            cancelled_attempt = Some((dup, node));
        }

        // A killed job (failure injection) may have been removed while this
        // task was still draining; its completion is a no-op.
        let Some(job) = self.jobs.get_mut(&job_id) else {
            return CompletionOutcome::default();
        };
        job.started_running = job.started_running.saturating_sub(1);
        if let Some((_, Some(_))) = cancelled_attempt {
            // The cancelled twin was running too; its share ends now.
            job.started_running = job.started_running.saturating_sub(1);
        }
        let mut outcome = CompletionOutcome {
            cancelled_attempt,
            ..CompletionOutcome::default()
        };
        if is_map {
            job.maps_done += 1;
            if job.maps_finished() {
                outcome.maps_finished = true;
                if job.reduce_tasks.is_empty() {
                    job.finished = Some(now);
                    outcome.job_finished = true;
                } else {
                    self.pending_reduces.extend(job.reduce_tasks.iter());
                }
            }
        } else {
            job.reduces_done += 1;
            if job.reduces_done == job.reduce_tasks.len() {
                job.finished = Some(now);
                outcome.job_finished = true;
            }
        }
        outcome
    }

    /// Creates a speculative duplicate of a **running map task** (straggler
    /// mitigation). The duplicate joins the pending map queue; whichever
    /// attempt finishes first completes the logical task and the twin is
    /// cancelled via [`CompletionOutcome::cancelled_attempt`].
    ///
    /// Returns `None` if the task is not an assigned map task, is already
    /// speculated, or its job is finished.
    pub fn speculate(&mut self, task: TaskId) -> Option<TaskId> {
        let rec = *self.tasks.get(&task)?;
        if !matches!(rec.kind, TaskKind::Map { .. }) {
            return None;
        }
        let TaskState::Assigned(_) = rec.state else {
            return None;
        };
        if self.dup_of.contains_key(&task) || self.orig_of.contains_key(&task) {
            return None;
        }
        if !self.is_running(rec.job) {
            return None;
        }
        let id = self.alloc_task();
        self.tasks.insert(
            id,
            TaskRecord {
                id,
                job: rec.job,
                kind: rec.kind,
                state: TaskState::Pending,
                assigned_at: None,
                completed_at: None,
            },
        );
        self.pending_maps.push(id);
        self.dup_of.insert(task, id);
        self.orig_of.insert(id, task);
        Some(id)
    }

    /// Node failure: every task running on `node` is re-queued for
    /// re-execution (MapReduce's standard recovery). Returns the re-queued
    /// task ids.
    pub fn fail_node(&mut self, node: NodeId) -> Vec<TaskId> {
        // Capture (job, kind) while requeueing so the second pass never
        // has to look the tasks back up.
        let mut requeued = Vec::new();
        let mut hit = Vec::new();
        for rec in self.tasks.values_mut() {
            if rec.state == TaskState::Assigned(node) {
                rec.state = TaskState::Pending;
                rec.assigned_at = None;
                requeued.push(rec.id);
                hit.push((rec.id, rec.job, matches!(rec.kind, TaskKind::Map { .. })));
            }
        }
        for &(t, job, is_map) in &hit {
            if let Some(j) = self.jobs.get_mut(&job) {
                j.started_running = j.started_running.saturating_sub(1);
            }
            if is_map {
                self.pending_maps.push(t);
            } else {
                self.pending_reduces.push(t);
            }
        }
        requeued
    }

    /// Kills a job outright (failure injection): its unfinished tasks are
    /// dropped from the pending queues and the job never finishes. Running
    /// tasks are left to drain harmlessly. Returns whether the job existed
    /// and was unfinished.
    pub fn kill_job(&mut self, job: JobId) -> bool {
        let Some(j) = self.jobs.get(&job) else {
            return false;
        };
        if j.is_finished() {
            return false;
        }
        let tasks: Vec<TaskId> = j.map_tasks.iter().chain(&j.reduce_tasks).copied().collect();
        for t in tasks {
            let Some(rec) = self.tasks.get_mut(&t) else {
                continue; // stale id in the job's task list
            };
            if rec.state == TaskState::Pending {
                rec.state = TaskState::Completed; // dropped; never ran
            }
        }
        // A task id with no record is dropped from the queues too: it can
        // never be scheduled.
        self.pending_maps
            .retain(|t| self.tasks.get(t).is_some_and(|r| r.job != job));
        self.pending_reduces
            .retain(|t| self.tasks.get(t).is_some_and(|r| r.job != job));
        self.jobs.remove(&job);
        true
    }
}

/// Picks the next map task for a free slot on `node`.
///
/// Jobs share the cluster **fairly** (Hadoop Fair Scheduler semantics, the
/// standard SWIM setup): the job with the fewest running tasks is served
/// first, breaking ties by queue order — so a 24 GB tail job cannot
/// head-of-line-block the 85% of small jobs. Within the chosen job,
/// locality decides:
///
/// 1. a task whose block is **in memory** on `node` (the migrated-replica
///    locality preference Ignem exposes, §III-A2);
/// 2. a task with a **disk replica** on `node` (classic HDFS locality);
/// 3. the job's first pending task (remote read).
pub fn choose_map_task(
    tracker: &JobTracker,
    node: NodeId,
    in_memory: impl Fn(NodeId, BlockId) -> bool,
    has_replica: impl Fn(NodeId, BlockId) -> bool,
) -> Option<TaskId> {
    let pending = tracker.pending_maps();
    // Fair share: job with the fewest running tasks, ties by queue order.
    let mut best: Option<(usize, JobId)> = None;
    for &t in pending {
        let job = tracker.task(t).job;
        if best.is_some_and(|(_, j)| j == job) {
            continue;
        }
        let running = tracker.running_tasks(job);
        if best.is_none() || running < best.expect("checked").0 {
            best = Some((running, job));
        }
    }
    let (_, job) = best?;
    let mut disk_local = None;
    let mut any = None;
    for &t in pending {
        if tracker.task(t).job != job {
            continue;
        }
        let TaskKind::Map { block, .. } = tracker.task(t).kind else {
            continue;
        };
        match block {
            Some(b) => {
                if in_memory(node, b) {
                    return Some(t);
                }
                if disk_local.is_none() && has_replica(node, b) {
                    disk_local = Some(t);
                }
            }
            None => {
                // Cached intermediate input: location-free.
            }
        }
        if any.is_none() {
            any = Some(t);
        }
    }
    disk_local.or(any)
}

/// Picks the next reduce task, with the same fair-share job choice as
/// [`choose_map_task`].
pub fn choose_reduce_task(tracker: &JobTracker) -> Option<TaskId> {
    let pending = tracker.pending_reduces();
    let mut best: Option<(usize, TaskId)> = None;
    for &t in pending {
        let job = tracker.task(t).job;
        let running = tracker.running_tasks(job);
        if best.is_none() || running < best.expect("checked").0 {
            best = Some((running, t));
        }
    }
    best.map(|(_, t)| t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobInput, JobSpec};

    fn spec(reducers: usize) -> JobSpec {
        let mut s = JobSpec::new("t", JobInput::DfsFiles(vec!["/in".into()]));
        s.reducers = reducers;
        if reducers > 0 {
            s.shuffle_bytes = 1000;
            s.output_bytes = 100;
        }
        s
    }

    fn inputs(n: u64) -> Vec<MapInput> {
        (0..n)
            .map(|i| MapInput {
                block: Some(BlockId(i)),
                bytes: 64 << 20,
            })
            .collect()
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn submit_creates_map_tasks() {
        let mut tr = JobTracker::new();
        tr.submit(JobId(1), spec(0), t(0), t(0), &inputs(3));
        assert_eq!(tr.pending_maps().len(), 3);
        assert_eq!(tr.pending_reduces().len(), 0);
        assert!(tr.is_running(JobId(1)));
    }

    #[test]
    fn map_only_job_finishes_with_maps() {
        let mut tr = JobTracker::new();
        tr.submit(JobId(1), spec(0), t(0), t(0), &inputs(2));
        let tasks: Vec<TaskId> = tr.pending_maps().to_vec();
        tr.assign(t(1), tasks[0], NodeId(0));
        tr.assign(t(1), tasks[1], NodeId(1));
        let o1 = tr.complete(t(2), tasks[0]);
        assert!(!o1.job_finished);
        let o2 = tr.complete(t(3), tasks[1]);
        assert!(o2.job_finished && o2.maps_finished);
        assert_eq!(tr.job(JobId(1)).duration(), Some(3.0));
        assert!(!tr.is_running(JobId(1)));
    }

    #[test]
    fn reduces_unlock_after_maps() {
        let mut tr = JobTracker::new();
        tr.submit(JobId(1), spec(2), t(0), t(0), &inputs(1));
        let m = tr.pending_maps()[0];
        tr.assign(t(1), m, NodeId(0));
        assert!(tr.pending_reduces().is_empty());
        let o = tr.complete(t(2), m);
        assert!(o.maps_finished && !o.job_finished);
        assert_eq!(tr.pending_reduces().len(), 2);
        let r1 = choose_reduce_task(&tr).unwrap();
        tr.assign(t(3), r1, NodeId(0));
        tr.complete(t(4), r1);
        let r2 = choose_reduce_task(&tr).unwrap();
        tr.assign(t(4), r2, NodeId(1));
        let o = tr.complete(t(6), r2);
        assert!(o.job_finished);
        assert_eq!(tr.job(JobId(1)).duration(), Some(6.0));
    }

    #[test]
    fn task_durations_are_recorded() {
        let mut tr = JobTracker::new();
        tr.submit(JobId(1), spec(0), t(0), t(0), &inputs(1));
        let m = tr.pending_maps()[0];
        tr.assign(t(5), m, NodeId(0));
        tr.complete(t(9), m);
        assert_eq!(tr.task(m).duration(), Some(4.0));
    }

    #[test]
    fn locality_prefers_memory_then_disk() {
        let mut tr = JobTracker::new();
        tr.submit(JobId(1), spec(0), t(0), t(0), &inputs(3));
        let node = NodeId(5);
        // Block 2 in memory, block 1 on local disk, block 0 remote.
        let pick = choose_map_task(&tr, node, |_, b| b == BlockId(2), |_, b| b == BlockId(1));
        let TaskKind::Map { block, .. } = tr.task(pick.unwrap()).kind else {
            panic!()
        };
        assert_eq!(block, Some(BlockId(2)));
        // Without memory residents, prefer the disk-local block 1.
        let pick = choose_map_task(&tr, node, |_, _| false, |_, b| b == BlockId(1));
        let TaskKind::Map { block, .. } = tr.task(pick.unwrap()).kind else {
            panic!()
        };
        assert_eq!(block, Some(BlockId(1)));
        // With nothing local, FIFO.
        let pick = choose_map_task(&tr, node, |_, _| false, |_, _| false);
        let TaskKind::Map { block, .. } = tr.task(pick.unwrap()).kind else {
            panic!()
        };
        assert_eq!(block, Some(BlockId(0)));
    }

    #[test]
    fn fifo_across_jobs() {
        let mut tr = JobTracker::new();
        tr.submit(JobId(1), spec(0), t(0), t(0), &inputs(1));
        let mut s2 = spec(0);
        s2.name = "second".into();
        tr.submit(
            JobId(2),
            s2,
            t(1),
            t(1),
            &[MapInput {
                block: Some(BlockId(99)),
                bytes: 1,
            }],
        );
        let pick = choose_map_task(&tr, NodeId(0), |_, _| false, |_, _| false).unwrap();
        assert_eq!(tr.task(pick).job, JobId(1));
    }

    #[test]
    fn node_failure_requeues_running_tasks() {
        let mut tr = JobTracker::new();
        tr.submit(JobId(1), spec(0), t(0), t(0), &inputs(2));
        let tasks: Vec<TaskId> = tr.pending_maps().to_vec();
        tr.assign(t(1), tasks[0], NodeId(0));
        tr.assign(t(1), tasks[1], NodeId(1));
        let requeued = tr.fail_node(NodeId(0));
        assert_eq!(requeued, vec![tasks[0]]);
        assert_eq!(tr.pending_maps(), &[tasks[0]]);
        // The re-queued task can be assigned and completed elsewhere.
        tr.assign(t(2), tasks[0], NodeId(1));
        tr.complete(t(3), tasks[0]);
        tr.complete(t(3), tasks[1]);
        assert!(tr.job(JobId(1)).is_finished());
    }

    #[test]
    fn kill_job_drops_pending_work() {
        let mut tr = JobTracker::new();
        tr.submit(JobId(1), spec(0), t(0), t(0), &inputs(3));
        assert!(tr.kill_job(JobId(1)));
        assert!(tr.pending_maps().is_empty());
        assert!(!tr.is_running(JobId(1)));
        assert!(!tr.kill_job(JobId(1)), "second kill is a no-op");
    }

    #[test]
    fn cached_splits_have_no_block() {
        let mut tr = JobTracker::new();
        let s = JobSpec::new("stage2", JobInput::Cached(128 << 20));
        tr.submit(
            JobId(1),
            s,
            t(0),
            t(0),
            &[
                MapInput {
                    block: None,
                    bytes: 64 << 20,
                },
                MapInput {
                    block: None,
                    bytes: 64 << 20,
                },
            ],
        );
        let pick = choose_map_task(&tr, NodeId(0), |_, _| false, |_, _| false).unwrap();
        let TaskKind::Map { block, .. } = tr.task(pick).kind else {
            panic!()
        };
        assert_eq!(block, None);
    }

    #[test]
    fn speculation_duplicate_wins() {
        let mut tr = JobTracker::new();
        tr.submit(JobId(1), spec(0), t(0), t(0), &inputs(1));
        let orig = tr.pending_maps()[0];
        tr.assign(t(1), orig, NodeId(0));
        let dup = tr.speculate(orig).expect("speculation allowed");
        assert_eq!(tr.pending_maps(), &[dup]);
        tr.assign(t(2), dup, NodeId(1));
        // The duplicate finishes first: job completes, original cancelled.
        let o = tr.complete(t(3), dup);
        assert!(o.job_finished);
        assert_eq!(o.cancelled_attempt, Some((orig, Some(NodeId(0)))));
        assert_eq!(tr.task(orig).state, TaskState::Completed);
        assert_eq!(tr.running_tasks(JobId(1)), 0);
    }

    #[test]
    fn speculation_original_wins() {
        let mut tr = JobTracker::new();
        tr.submit(JobId(1), spec(0), t(0), t(0), &inputs(1));
        let orig = tr.pending_maps()[0];
        tr.assign(t(1), orig, NodeId(0));
        let dup = tr.speculate(orig).expect("speculation allowed");
        // The original finishes while the duplicate is still pending.
        let o = tr.complete(t(2), orig);
        assert!(o.job_finished);
        assert_eq!(o.cancelled_attempt, Some((dup, None)));
        assert!(tr.pending_maps().is_empty(), "dup must leave the queue");
    }

    #[test]
    fn speculation_rejects_bad_targets() {
        let mut tr = JobTracker::new();
        tr.submit(JobId(1), spec(1), t(0), t(0), &inputs(1));
        let m = tr.pending_maps()[0];
        // Pending task: not speculatable.
        assert!(tr.speculate(m).is_none());
        tr.assign(t(1), m, NodeId(0));
        assert!(tr.speculate(m).is_some());
        // Already speculated: no second duplicate.
        assert!(tr.speculate(m).is_none());
        // Reduces are never speculated.
        tr.complete(t(2), m);
        let r = tr.pending_reduces()[0];
        tr.assign(t(3), r, NodeId(0));
        assert!(tr.speculate(r).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate job id")]
    fn duplicate_job_rejected() {
        let mut tr = JobTracker::new();
        tr.submit(JobId(1), spec(0), t(0), t(0), &inputs(1));
        tr.submit(JobId(1), spec(0), t(0), t(0), &inputs(1));
    }

    #[test]
    #[should_panic(expected = "assigning non-pending task")]
    fn double_assign_rejected() {
        let mut tr = JobTracker::new();
        tr.submit(JobId(1), spec(0), t(0), t(0), &inputs(1));
        let m = tr.pending_maps()[0];
        tr.assign(t(1), m, NodeId(0));
        tr.assign(t(1), m, NodeId(1));
    }
}
