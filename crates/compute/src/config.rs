//! Compute-framework configuration.

use ignem_simcore::time::SimDuration;

/// Scheduler and task-runtime parameters.
///
/// Defaults match the paper's platform description: Hadoop/YARN's 3-second
/// heartbeat interval (§II-C1: "the default heartbeat interval in Hadoop is
/// 3 seconds"), a ~1 s per-task launch overhead (container start + JVM
/// warm-up, §II-C1's "shipping binaries … and JVM warm-up costs"), and 12
/// task slots per node (the testbed's Xeon E5-1650 exposes 12 hyperthreads).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeConfig {
    /// Node → ResourceManager heartbeat interval; tasks are only assigned
    /// on heartbeats, a principal source of lead-time.
    pub heartbeat: SimDuration,
    /// Task slots per node.
    pub slots_per_node: usize,
    /// Fixed overhead between slot assignment and the task's first byte of
    /// input IO.
    pub task_launch_overhead: SimDuration,
    /// Fixed overhead the job-submitter spends before the job is queued
    /// (client-side planning, RPC round-trips).
    pub submit_overhead: SimDuration,
    /// Enable speculative execution: map tasks running much longer than
    /// their job's completed-task mean get a duplicate attempt; the first
    /// finisher wins (Hadoop's classic straggler mitigation).
    pub speculation: bool,
    /// Straggler threshold: a running map is speculated once its elapsed
    /// time exceeds this multiple of the job's mean completed-map time.
    pub speculation_threshold: f64,
    /// Log-sigma of per-task compute-time jitter (0 = deterministic
    /// compute). Models heterogeneous task service times — the straggler
    /// effect the cluster literature studies. The multiplier is a
    /// mean-one log-normal, so expected compute cost is unchanged.
    pub compute_jitter_sigma: f64,
    /// ApplicationMaster startup: the time between the job being queued at
    /// the ResourceManager and its tasks becoming schedulable (AM container
    /// allocation + Tez DAG setup). A large, fixed part of every job's
    /// duration — and additional lead-time Ignem exploits.
    pub am_overhead: SimDuration,
}

impl Default for ComputeConfig {
    fn default() -> Self {
        ComputeConfig {
            heartbeat: SimDuration::from_secs(3),
            slots_per_node: 12,
            task_launch_overhead: SimDuration::from_millis(1000),
            submit_overhead: SimDuration::from_millis(500),
            speculation: false,
            speculation_threshold: 2.0,
            compute_jitter_sigma: 0.0,
            am_overhead: SimDuration::from_secs(5),
        }
    }
}

impl ComputeConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on a zero heartbeat or zero slots.
    pub fn validate(&self) {
        assert!(!self.heartbeat.is_zero(), "zero heartbeat interval");
        assert!(self.slots_per_node > 0, "zero slots per node");
        assert!(
            self.compute_jitter_sigma.is_finite() && self.compute_jitter_sigma >= 0.0,
            "bad jitter sigma"
        );
        assert!(
            self.speculation_threshold.is_finite() && self.speculation_threshold > 1.0,
            "speculation threshold must exceed 1"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ComputeConfig::default();
        c.validate();
        assert_eq!(c.heartbeat.as_secs_f64(), 3.0);
        assert_eq!(c.slots_per_node, 12);
    }

    #[test]
    #[should_panic(expected = "zero heartbeat")]
    fn zero_heartbeat_rejected() {
        ComputeConfig {
            heartbeat: SimDuration::ZERO,
            ..ComputeConfig::default()
        }
        .validate();
    }
}
