//! Per-node task-slot accounting.

use ignem_netsim::NodeId;

/// Tracks used/total task slots on every node.
///
/// ```
/// use ignem_compute::slots::Slots;
/// use ignem_netsim::NodeId;
///
/// let mut s = Slots::new(2, 3);
/// assert_eq!(s.free(NodeId(0)), 3);
/// assert!(s.acquire(NodeId(0)));
/// s.release(NodeId(0));
/// assert_eq!(s.free(NodeId(0)), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Slots {
    used: Vec<usize>,
    per_node: usize,
}

impl Slots {
    /// Creates slot tables for `nodes` nodes with `per_node` slots each.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(nodes: usize, per_node: usize) -> Self {
        assert!(nodes > 0 && per_node > 0, "empty slot table");
        Slots {
            used: vec![0; nodes],
            per_node,
        }
    }

    /// Slots per node.
    pub fn per_node(&self) -> usize {
        self.per_node
    }

    /// Free slots on `node`.
    pub fn free(&self, node: NodeId) -> usize {
        self.per_node - self.used[node.0 as usize]
    }

    /// Used slots on `node`.
    pub fn used(&self, node: NodeId) -> usize {
        self.used[node.0 as usize]
    }

    /// Total used slots across the cluster.
    pub fn total_used(&self) -> usize {
        self.used.iter().sum()
    }

    /// Takes a slot on `node` if one is free.
    pub fn acquire(&mut self, node: NodeId) -> bool {
        let u = &mut self.used[node.0 as usize];
        if *u < self.per_node {
            *u += 1;
            true
        } else {
            false
        }
    }

    /// Returns a slot on `node`.
    ///
    /// # Panics
    ///
    /// Panics if no slot is held on that node.
    pub fn release(&mut self, node: NodeId) {
        let u = &mut self.used[node.0 as usize];
        assert!(*u > 0, "releasing unheld slot on {node}");
        *u -= 1;
    }

    /// Frees every slot on `node` (node failure), returning how many were
    /// in use.
    pub fn clear_node(&mut self, node: NodeId) -> usize {
        std::mem::take(&mut self.used[node.0 as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_until_full() {
        let mut s = Slots::new(1, 2);
        assert!(s.acquire(NodeId(0)));
        assert!(s.acquire(NodeId(0)));
        assert!(!s.acquire(NodeId(0)));
        assert_eq!(s.free(NodeId(0)), 0);
        assert_eq!(s.used(NodeId(0)), 2);
    }

    #[test]
    fn release_restores_capacity() {
        let mut s = Slots::new(1, 1);
        assert!(s.acquire(NodeId(0)));
        s.release(NodeId(0));
        assert!(s.acquire(NodeId(0)));
    }

    #[test]
    fn clear_node_frees_everything() {
        let mut s = Slots::new(2, 4);
        s.acquire(NodeId(1));
        s.acquire(NodeId(1));
        assert_eq!(s.clear_node(NodeId(1)), 2);
        assert_eq!(s.free(NodeId(1)), 4);
        assert_eq!(s.total_used(), 0);
    }

    #[test]
    #[should_panic(expected = "releasing unheld slot")]
    fn release_unheld_panics() {
        Slots::new(1, 1).release(NodeId(0));
    }
}
