//! An unreliable control-plane RPC channel.
//!
//! The paper's Ignem master and slaves talk over ordinary datacenter RPC
//! (migrate batches, evict commands, liveness queries/replies). A real
//! network loses, delays and retransmits such messages; this module models
//! that as a per-message decision process, driven by a seeded
//! [`SimRng`](ignem_simcore::rng::SimRng) so every run is reproducible:
//!
//! * each message is **dropped** with a configurable probability (globally,
//!   or overridden per directed edge);
//! * a delivered message is **duplicated** (delivered twice) with a
//!   configurable probability — modelling sender retransmission races;
//! * each delivered copy suffers an extra uniform **delay** on top of the
//!   caller's base RPC latency;
//! * a **partition** cuts a set of nodes off from the rest of the control
//!   plane until healed.
//!
//! The channel itself is passive: [`RpcChannel::deliveries`] returns the
//! extra delay of every copy to deliver (an empty vector means the message
//! was lost), and the caller schedules the deliveries on its own event
//! loop. The default configuration is perfectly reliable — one copy, zero
//! extra delay — so a fault-free simulation behaves exactly as if the
//! channel were not there.

use std::collections::{BTreeMap, BTreeSet};

use ignem_simcore::metrics::MetricsRegistry;
use ignem_simcore::rng::SimRng;
use ignem_simcore::telemetry::{Event, Peer, Telemetry};
use ignem_simcore::time::SimDuration;

use crate::NodeId;

/// A master incarnation number stamped onto every control-plane message.
///
/// The master bumps its epoch on every purge/failover; slaves remember the
/// highest epoch they have seen and reject commands stamped with an older
/// one (the sender's authority was revoked by the failover). This is the
/// wire-level half of the lease/epoch reference lifecycle: retransmissions
/// of a pre-failover send can survive arbitrarily long in the channel, so
/// freshness must travel *inside* the message, not be inferred from timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Epoch(pub u64);

impl Epoch {
    /// The first live epoch; no real message is ever stamped lower.
    pub const FIRST: Epoch = Epoch(1);

    /// The epoch after this one (a failover bump).
    #[must_use]
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }
}

impl std::fmt::Display for Epoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "epoch_{}", self.0)
    }
}

/// A slave incarnation number: which boot of a node's daemon is speaking.
///
/// The mirror image of [`Epoch`]: where epochs fence commands from a
/// *master* whose authority was revoked by a failover, incarnations fence
/// commands addressed to a *slave* process that has since crashed and
/// restarted. The master stamps every send with the incarnation it believes
/// the destination is running; a restarted slave (which bumped its own
/// incarnation and re-registered) rejects anything stamped older — a
/// retransmission aimed at the dead incarnation must not resurrect purged
/// reference-list state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Incarnation(pub u64);

impl Incarnation {
    /// The boot every node starts under; no message is ever stamped lower.
    pub const FIRST: Incarnation = Incarnation(1);

    /// The incarnation after a crash/restart cycle.
    #[must_use]
    pub fn next(self) -> Incarnation {
        Incarnation(self.0 + 1)
    }
}

impl std::fmt::Display for Incarnation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "incarnation_{}", self.0)
    }
}

/// One end of a control-plane RPC: the Ignem master (inside the NameNode)
/// or a slave daemon on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RpcPeer {
    /// The master/NameNode side.
    Master,
    /// The slave daemon on the given node.
    Slave(NodeId),
}

impl RpcPeer {
    /// Internal endpoint encoding; the master never collides with a real
    /// node id because `NodeId` is a dense small index in practice.
    fn encode(self) -> u32 {
        match self {
            RpcPeer::Master => u32::MAX,
            RpcPeer::Slave(n) => n.0,
        }
    }

    /// The telemetry-layer rendering of this endpoint.
    fn telemetry_peer(self) -> Peer {
        match self {
            RpcPeer::Master => Peer::Master,
            RpcPeer::Slave(n) => Peer::Node(n.0),
        }
    }
}

/// Channel configuration. The default is a perfectly reliable channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RpcConfig {
    /// Probability that a message is silently lost.
    pub drop_p: f64,
    /// Probability that a delivered message is delivered twice.
    pub dup_p: f64,
    /// Maximum extra delivery delay; each copy is delayed by an independent
    /// uniform sample from `[0, jitter]` on top of the base RPC latency.
    pub jitter: SimDuration,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            drop_p: 0.0,
            dup_p: 0.0,
            jitter: SimDuration::ZERO,
        }
    }
}

impl RpcConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if a probability is outside `[0, 1)` (a drop probability of
    /// exactly 1 would make every retry futile and no simulation could
    /// terminate) or not finite.
    pub fn validate(&self) {
        assert!(
            self.drop_p.is_finite() && (0.0..1.0).contains(&self.drop_p),
            "drop_p must be in [0, 1): {}",
            self.drop_p
        );
        assert!(
            self.dup_p.is_finite() && (0.0..1.0).contains(&self.dup_p),
            "dup_p must be in [0, 1): {}",
            self.dup_p
        );
    }
}

/// Counters describing what the channel did to the traffic offered to it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RpcStats {
    /// Messages offered to the channel.
    pub sent: u64,
    /// Copies scheduled for delivery (≥ `sent - dropped - cut`).
    pub delivered: u64,
    /// Messages lost to random drop.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages lost to an active partition.
    pub cut: u64,
}

/// The unreliable channel (see module docs).
#[derive(Debug, Clone)]
pub struct RpcChannel {
    config: RpcConfig,
    /// Per-directed-edge drop probability overrides.
    edge_drop: BTreeMap<(u32, u32), f64>,
    /// Active partitions: id → set of cut-off endpoints. A message is lost
    /// when exactly one of its endpoints is inside a partition set.
    partitions: BTreeMap<usize, BTreeSet<u32>>,
    stats: RpcStats,
    /// Typed event emission (disabled by default; consumes no randomness).
    telemetry: Telemetry,
    /// Sim-time metrics (disabled by default; consumes no randomness).
    metrics: MetricsRegistry,
}

impl RpcChannel {
    /// Creates a channel.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`RpcConfig::validate`]).
    pub fn new(config: RpcConfig) -> Self {
        config.validate();
        RpcChannel {
            config,
            edge_drop: BTreeMap::new(),
            partitions: BTreeMap::new(),
            stats: RpcStats::default(),
            telemetry: Telemetry::default(),
            metrics: MetricsRegistry::default(),
        }
    }

    /// Installs a telemetry handle; the channel then emits
    /// [`Event::RpcSent`] / [`Event::RpcDropped`] / [`Event::RpcDuplicated`]
    /// / [`Event::RpcCut`] as it decides each message's fate.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Installs a sim-time metrics handle; the channel then counts sends,
    /// drops and duplicates and histograms the extra jitter it injects.
    /// Recording consumes no randomness and never perturbs message fate.
    pub fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    /// The channel configuration.
    pub fn config(&self) -> &RpcConfig {
        &self.config
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> RpcStats {
        self.stats
    }

    /// Overrides the drop probability for messages from `from` to `to`
    /// (direction matters: a flaky downlink need not imply a flaky uplink).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    pub fn set_edge_drop(&mut self, from: RpcPeer, to: RpcPeer, p: f64) {
        assert!(
            p.is_finite() && (0.0..1.0).contains(&p),
            "edge drop probability must be in [0, 1): {p}"
        );
        self.edge_drop.insert((from.encode(), to.encode()), p);
    }

    /// Starts a partition cutting `nodes` off from the rest of the control
    /// plane (including the master) until [`heal`](Self::heal) is called
    /// with the same `id`. Messages *among* the cut-off nodes still flow.
    /// Replacing an existing id's set is allowed.
    pub fn partition(&mut self, id: usize, nodes: &[NodeId]) {
        self.partitions
            .insert(id, nodes.iter().map(|n| n.0).collect());
    }

    /// Heals the partition registered under `id` (no-op if unknown).
    pub fn heal(&mut self, id: usize) {
        self.partitions.remove(&id);
    }

    /// The active partitions as `(id, cut-off node set)` pairs, ascending
    /// by id. The time-travel debugger renders these; the sets are copied
    /// so callers need no access to the channel's internal containers.
    pub fn active_partitions(&self) -> Vec<(usize, Vec<u32>)> {
        self.partitions
            .iter()
            .map(|(id, set)| (*id, set.iter().copied().collect()))
            .collect()
    }

    /// Whether any active partition separates the two peers.
    pub fn is_cut(&self, from: RpcPeer, to: RpcPeer) -> bool {
        let (a, b) = (from.encode(), to.encode());
        self.partitions
            .values()
            .any(|set| set.contains(&a) != set.contains(&b))
    }

    /// Decides the fate of one message from `from` to `to`: the returned
    /// set holds the **extra** delay of each copy to deliver on top of
    /// the caller's base RPC latency. Empty means the message was lost
    /// (dropped or partitioned); two entries mean it was duplicated.
    ///
    /// With the default (reliable) configuration and no partitions this
    /// returns a single zero-delay copy without consuming any randomness,
    /// so a fault-free run is bit-identical to one without the channel.
    pub fn deliveries(&mut self, rng: &mut SimRng, from: RpcPeer, to: RpcPeer) -> Deliveries {
        self.stats.sent += 1;
        self.telemetry.emit(|| Event::RpcSent {
            from: from.telemetry_peer(),
            to: to.telemetry_peer(),
        });
        self.metrics.counter_add("rpc_sent", 0, 1);
        if self.is_cut(from, to) {
            self.stats.cut += 1;
            self.telemetry.emit(|| Event::RpcCut {
                from: from.telemetry_peer(),
                to: to.telemetry_peer(),
            });
            self.metrics.counter_add("rpc_cut", 0, 1);
            return Deliveries::default();
        }
        let drop_p = self
            .edge_drop
            .get(&(from.encode(), to.encode()))
            .copied()
            .unwrap_or(self.config.drop_p);
        if drop_p <= 0.0 && self.config.dup_p <= 0.0 && self.config.jitter.is_zero() {
            self.stats.delivered += 1;
            return Deliveries::one(SimDuration::ZERO);
        }
        if rng.uniform() < drop_p {
            self.stats.dropped += 1;
            self.telemetry.emit(|| Event::RpcDropped {
                from: from.telemetry_peer(),
                to: to.telemetry_peer(),
            });
            self.metrics.counter_add("rpc_dropped", 0, 1);
            return Deliveries::default();
        }
        let copies = if self.config.dup_p > 0.0 && rng.uniform() < self.config.dup_p {
            self.stats.duplicated += 1;
            self.telemetry.emit(|| Event::RpcDuplicated {
                from: from.telemetry_peer(),
                to: to.telemetry_peer(),
            });
            self.metrics.counter_add("rpc_duplicated", 0, 1);
            2
        } else {
            1
        };
        let jitter = self.config.jitter.as_secs_f64();
        let mut out = Deliveries::default();
        for _ in 0..copies {
            self.stats.delivered += 1;
            let delay = if jitter > 0.0 {
                SimDuration::from_secs_f64(rng.uniform() * jitter)
            } else {
                SimDuration::ZERO
            };
            self.metrics.observe("rpc_jitter_us", 0, delay.as_micros());
            out.push(delay);
        }
        out
    }
}

/// Outcome of [`RpcChannel::deliveries`]: zero (lost), one, or two
/// (duplicated) extra delivery delays, stored inline so the reliable
/// per-message fast path never touches the heap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Deliveries {
    buf: [SimDuration; 2],
    len: u8,
}

impl Deliveries {
    fn one(d: SimDuration) -> Deliveries {
        Deliveries {
            buf: [d, SimDuration::ZERO],
            len: 1,
        }
    }

    fn push(&mut self, d: SimDuration) {
        self.buf[self.len as usize] = d;
        self.len += 1;
    }

    /// Number of copies to deliver (0 = message lost).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the message was lost entirely.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The delays as a slice, in generation order.
    pub fn as_slice(&self) -> &[SimDuration] {
        &self.buf[..self.len as usize]
    }
}

impl IntoIterator for Deliveries {
    type Item = SimDuration;
    type IntoIter = std::iter::Take<std::array::IntoIter<SimDuration, 2>>;

    fn into_iter(self) -> Self::IntoIter {
        self.buf.into_iter().take(self.len as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> RpcPeer {
        RpcPeer::Slave(NodeId(i))
    }

    #[test]
    fn reliable_default_delivers_one_copy_without_randomness() {
        let mut ch = RpcChannel::new(RpcConfig::default());
        let mut rng = SimRng::new(1);
        let before = rng.clone();
        for _ in 0..100 {
            assert_eq!(
                ch.deliveries(&mut rng, RpcPeer::Master, n(3)).as_slice(),
                [SimDuration::ZERO]
            );
        }
        assert_eq!(rng, before, "reliable path must not consume randomness");
        assert_eq!(ch.stats().sent, 100);
        assert_eq!(ch.stats().delivered, 100);
    }

    #[test]
    fn drop_probability_loses_roughly_that_fraction() {
        let mut ch = RpcChannel::new(RpcConfig {
            drop_p: 0.3,
            ..RpcConfig::default()
        });
        let mut rng = SimRng::new(2);
        for _ in 0..10_000 {
            ch.deliveries(&mut rng, RpcPeer::Master, n(1));
        }
        let frac = ch.stats().dropped as f64 / ch.stats().sent as f64;
        assert!((frac - 0.3).abs() < 0.02, "drop fraction {frac}");
    }

    #[test]
    fn duplication_delivers_two_copies() {
        let mut ch = RpcChannel::new(RpcConfig {
            dup_p: 0.5,
            ..RpcConfig::default()
        });
        let mut rng = SimRng::new(3);
        let mut doubles = 0;
        for _ in 0..1_000 {
            let d = ch.deliveries(&mut rng, n(0), RpcPeer::Master);
            assert!(!d.is_empty());
            if d.len() == 2 {
                doubles += 1;
            }
        }
        assert!(doubles > 400 && doubles < 600, "doubles {doubles}");
        assert_eq!(ch.stats().duplicated, doubles);
    }

    #[test]
    fn jitter_bounds_extra_delay() {
        let jitter = SimDuration::from_millis(50);
        let mut ch = RpcChannel::new(RpcConfig {
            jitter,
            ..RpcConfig::default()
        });
        let mut rng = SimRng::new(4);
        for _ in 0..1_000 {
            for d in ch.deliveries(&mut rng, RpcPeer::Master, n(2)) {
                assert!(d <= jitter);
            }
        }
    }

    #[test]
    fn per_edge_override_beats_global() {
        let mut ch = RpcChannel::new(RpcConfig::default());
        ch.set_edge_drop(RpcPeer::Master, n(1), 0.99);
        let mut rng = SimRng::new(5);
        let mut lost = 0;
        for _ in 0..1_000 {
            if ch.deliveries(&mut rng, RpcPeer::Master, n(1)).is_empty() {
                lost += 1;
            }
            // The reverse edge keeps the (reliable) global default.
            assert!(!ch.deliveries(&mut rng, n(1), RpcPeer::Master).is_empty());
        }
        assert!(lost > 950, "lost {lost}");
    }

    #[test]
    fn partition_cuts_only_across_the_boundary() {
        let mut ch = RpcChannel::new(RpcConfig::default());
        ch.partition(0, &[NodeId(1), NodeId(2)]);
        let mut rng = SimRng::new(6);
        // Across the cut: lost, both directions, master included.
        assert!(ch.deliveries(&mut rng, RpcPeer::Master, n(1)).is_empty());
        assert!(ch.deliveries(&mut rng, n(2), RpcPeer::Master).is_empty());
        assert!(ch.deliveries(&mut rng, n(1), n(3)).is_empty());
        // Within a side: flows.
        assert!(!ch.deliveries(&mut rng, n(1), n(2)).is_empty());
        assert!(!ch.deliveries(&mut rng, RpcPeer::Master, n(3)).is_empty());
        assert_eq!(ch.stats().cut, 3);
        ch.heal(0);
        assert!(!ch.deliveries(&mut rng, RpcPeer::Master, n(1)).is_empty());
    }

    #[test]
    fn overlapping_partitions_heal_independently() {
        let mut ch = RpcChannel::new(RpcConfig::default());
        ch.partition(0, &[NodeId(1)]);
        ch.partition(1, &[NodeId(1), NodeId(2)]);
        assert!(ch.is_cut(RpcPeer::Master, n(2)));
        ch.heal(1);
        assert!(!ch.is_cut(RpcPeer::Master, n(2)));
        assert!(ch.is_cut(RpcPeer::Master, n(1)));
        ch.heal(0);
        assert!(!ch.is_cut(RpcPeer::Master, n(1)));
    }

    #[test]
    fn same_seed_same_fate() {
        let cfg = RpcConfig {
            drop_p: 0.2,
            dup_p: 0.1,
            jitter: SimDuration::from_millis(10),
        };
        let run = |seed| {
            let mut ch = RpcChannel::new(cfg);
            let mut rng = SimRng::new(seed);
            (0..500)
                .flat_map(|_| ch.deliveries(&mut rng, RpcPeer::Master, n(1)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    #[should_panic(expected = "drop_p must be in [0, 1)")]
    fn certain_loss_rejected() {
        RpcChannel::new(RpcConfig {
            drop_p: 1.0,
            ..RpcConfig::default()
        });
    }
}
