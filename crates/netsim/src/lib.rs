//! # ignem-netsim — cluster network fabric
//!
//! A deliberately simple network model, matching the paper's observation
//! (§III-A2, citing Flat Datacenter Storage) that *network bandwidth is not
//! a bottleneck in current data centres*: a non-blocking core connects
//! per-node NICs, so a transfer is limited only by its **receiver's NIC
//! share** (the receiver is the hot spot for fan-in shuffle traffic and
//! remote block reads, the only flows the simulation routes over the
//! network). Every RPC costs a fixed small latency.
//!
//! The fabric is engine-agnostic like every substrate: drive it with
//! [`Fabric::advance`] / [`Fabric::next_event`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rpc;

use ignem_simcore::flow::{FlowId, FlowResource};
use ignem_simcore::idmap::{DenseId, IdMap};
use ignem_simcore::time::{SimDuration, SimTime};

/// Identifies a server in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl DenseId for NodeId {
    fn index(self) -> usize {
        self.0 as usize
    }

    fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifies a network transfer. Caller-assigned; unique among in-flight
/// transfers, and (like [`FlowId`]) concurrently live ids should stay
/// numerically close — a monotone counter is ideal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransferId(pub u64);

impl DenseId for TransferId {
    fn index(self) -> usize {
        self.0 as usize
    }

    fn from_index(index: usize) -> Self {
        TransferId(index as u64)
    }
}

/// A finished network transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferDone {
    /// The transfer's id.
    pub id: TransferId,
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Payload size.
    pub bytes: u64,
    /// Submission time.
    pub started: SimTime,
    /// Completion time.
    pub finished: SimTime,
}

impl TransferDone {
    /// End-to-end duration.
    pub fn duration(&self) -> SimDuration {
        self.finished.duration_since(self.started)
    }
}

#[derive(Debug, Clone, Copy)]
struct Inflight {
    from: NodeId,
    to: NodeId,
    bytes: u64,
    started: SimTime,
}

/// Configuration of the fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Per-NIC bandwidth in bytes/s (the paper's testbed: 10 Gbps).
    pub nic_bandwidth: f64,
    /// One-way latency charged to each transfer and RPC.
    pub latency: SimDuration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            nic_bandwidth: 10e9 / 8.0, // 10 Gbps in bytes/s
            latency: SimDuration::from_micros(300),
        }
    }
}

/// The cluster network (see crate docs).
///
/// ```
/// use ignem_netsim::{Fabric, NetConfig, NodeId, TransferId};
/// use ignem_simcore::time::SimTime;
///
/// let mut net = Fabric::new(4, NetConfig::default());
/// net.start(SimTime::ZERO, TransferId(1), NodeId(0), NodeId(1), 125_000_000);
/// let mut done = vec![];
/// while let Some(t) = net.next_event() {
///     done.extend(net.advance(t));
/// }
/// // 125 MB over a 1.25 GB/s NIC: ~0.1 s + latency.
/// assert!((done[0].duration().as_secs_f64() - 0.1003).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct Fabric {
    config: NetConfig,
    downlinks: Vec<FlowResource>,
    inflight: IdMap<TransferId, Inflight>,
}

impl Fabric {
    /// Creates a fabric connecting `nodes` servers.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or the bandwidth is not positive.
    pub fn new(nodes: usize, config: NetConfig) -> Self {
        assert!(nodes > 0, "fabric needs at least one node");
        assert!(
            config.nic_bandwidth.is_finite() && config.nic_bandwidth > 0.0,
            "bad NIC bandwidth"
        );
        Fabric {
            config,
            downlinks: (0..nodes)
                .map(|_| FlowResource::new(config.nic_bandwidth, 0.0))
                .collect(),
            inflight: IdMap::new(),
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.downlinks.len()
    }

    /// The one-way RPC latency (applies to control messages).
    pub fn rpc_latency(&self) -> SimDuration {
        self.config.latency
    }

    /// Number of in-flight transfers.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Starts a transfer of `bytes` from `from` to `to`. Propagation latency
    /// is modelled as an initial quiet period on the receiver NIC.
    /// Returns transfers that completed while advancing to `now`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown node, a duplicate id, zero bytes, or a
    /// self-transfer (local data never crosses the network).
    pub fn start(
        &mut self,
        now: SimTime,
        id: TransferId,
        from: NodeId,
        to: NodeId,
        bytes: u64,
    ) -> Vec<TransferDone> {
        assert!(bytes > 0, "zero-byte transfer");
        assert!(from != to, "self-transfer should be served locally");
        assert!(
            (from.0 as usize) < self.nodes() && (to.0 as usize) < self.nodes(),
            "unknown node"
        );
        assert!(!self.inflight.contains_key(&id), "duplicate transfer id");
        self.inflight.insert(
            id,
            Inflight {
                from,
                to,
                bytes,
                started: now,
            },
        );
        // Latency as a "seek" on the receiver NIC; it does not consume
        // bandwidth share (degradation is 0 so seeking flows are harmless).
        let done =
            self.downlinks[to.0 as usize].add(now, FlowId(id.0), bytes as f64, self.config.latency);
        self.collect(to, done)
    }

    /// Cancels an in-flight transfer. Unknown ids are ignored.
    pub fn cancel(&mut self, now: SimTime, id: TransferId) -> Vec<TransferDone> {
        let Some(info) = self.inflight.get(&id).copied() else {
            return Vec::new();
        };
        let done = self.downlinks[info.to.0 as usize].cancel(now, FlowId(id.0));
        self.inflight.remove(&id);
        self.collect(info.to, done)
    }

    /// Earliest instant any transfer state changes, or `None` if idle.
    pub fn next_event(&self) -> Option<SimTime> {
        self.downlinks
            .iter()
            .filter_map(|nic| nic.next_event())
            .min()
    }

    /// Advances every NIC to `now` (NICs whose internal clock is already
    /// past `now` — e.g. because a transfer started on them later — are
    /// left untouched), returning finished transfers.
    pub fn advance(&mut self, now: SimTime) -> Vec<TransferDone> {
        let mut out = Vec::new();
        for i in 0..self.downlinks.len() {
            let t = now.max(self.downlinks[i].clock());
            let done = self.downlinks[i].advance(t);
            out.extend(self.collect(NodeId(i as u32), done));
        }
        out.sort_by_key(|t| (t.finished, t.id));
        out
    }

    fn collect(&mut self, _node: NodeId, flows: Vec<FlowId>) -> Vec<TransferDone> {
        flows
            .into_iter()
            .map(|fid| {
                let id = TransferId(fid.0);
                let info = self
                    .inflight
                    .remove(&id)
                    .expect("completion for unknown transfer");
                TransferDone {
                    id,
                    from: info.from,
                    to: info.to,
                    bytes: info.bytes,
                    started: info.started,
                    finished: self.downlinks[info.to.0 as usize].clock(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ignem_simcore::units::MB;

    fn drain(net: &mut Fabric) -> Vec<TransferDone> {
        let mut all = Vec::new();
        let mut guard = 0;
        while let Some(t) = net.next_event() {
            all.extend(net.advance(t));
            guard += 1;
            assert!(guard < 10_000, "fabric failed to drain");
        }
        all
    }

    #[test]
    fn single_transfer_gets_full_nic() {
        let mut net = Fabric::new(2, NetConfig::default());
        net.start(
            SimTime::ZERO,
            TransferId(1),
            NodeId(0),
            NodeId(1),
            1250 * MB,
        );
        let done = drain(&mut net);
        assert_eq!(done.len(), 1);
        // 1.25 GB at 1.25 GB/s = 1 s (+ 300 us latency).
        assert!((done[0].duration().as_secs_f64() - 1.0003).abs() < 1e-3);
    }

    #[test]
    fn fan_in_shares_receiver_nic() {
        let mut net = Fabric::new(3, NetConfig::default());
        net.start(
            SimTime::ZERO,
            TransferId(1),
            NodeId(0),
            NodeId(2),
            1250 * MB,
        );
        net.start(
            SimTime::ZERO,
            TransferId(2),
            NodeId(1),
            NodeId(2),
            1250 * MB,
        );
        let done = drain(&mut net);
        assert_eq!(done.len(), 2);
        for d in &done {
            assert!(d.duration().as_secs_f64() > 1.9, "fan-in must share");
        }
    }

    #[test]
    fn different_receivers_do_not_interfere() {
        let mut net = Fabric::new(4, NetConfig::default());
        net.start(
            SimTime::ZERO,
            TransferId(1),
            NodeId(0),
            NodeId(2),
            1250 * MB,
        );
        net.start(
            SimTime::ZERO,
            TransferId(2),
            NodeId(1),
            NodeId(3),
            1250 * MB,
        );
        let done = drain(&mut net);
        for d in &done {
            assert!((d.duration().as_secs_f64() - 1.0003).abs() < 1e-3);
        }
    }

    #[test]
    fn cancel_drops_transfer() {
        let mut net = Fabric::new(2, NetConfig::default());
        net.start(
            SimTime::ZERO,
            TransferId(1),
            NodeId(0),
            NodeId(1),
            1250 * MB,
        );
        net.cancel(SimTime::from_secs_f64(0.1), TransferId(1));
        assert_eq!(net.in_flight(), 0);
        assert!(drain(&mut net).is_empty());
    }

    #[test]
    fn rpc_latency_exposed() {
        let net = Fabric::new(1, NetConfig::default());
        assert_eq!(net.rpc_latency(), SimDuration::from_micros(300));
    }

    #[test]
    #[should_panic(expected = "self-transfer")]
    fn self_transfer_rejected() {
        let mut net = Fabric::new(2, NetConfig::default());
        net.start(SimTime::ZERO, TransferId(1), NodeId(0), NodeId(0), MB);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn unknown_node_rejected() {
        let mut net = Fabric::new(2, NetConfig::default());
        net.start(SimTime::ZERO, TransferId(1), NodeId(0), NodeId(7), MB);
    }
}
