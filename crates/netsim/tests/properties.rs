//! Property-based tests for the network fabric.

use ignem_netsim::{Fabric, NetConfig, NodeId, TransferId};
use ignem_simcore::time::SimTime;
use proptest::prelude::*;

proptest! {
    /// Every transfer completes exactly once, and no transfer finishes
    /// faster than its ideal solo time (bytes / NIC bandwidth + latency).
    #[test]
    fn transfers_complete_and_respect_capacity(
        xfers in proptest::collection::vec((0u32..6, 0u32..6, 1u64..2_000, 0u64..2_000_000), 1..30)
    ) {
        let cfg = NetConfig::default();
        let mut net = Fabric::new(6, cfg);
        let mut expected = 0usize;
        let mut done = Vec::new();
        let mut now = SimTime::ZERO;
        for (i, &(from, to, mb, at_us)) in xfers.iter().enumerate() {
            if from == to {
                continue;
            }
            let t = SimTime::from_micros(at_us);
            now = now.max(t);
            done.extend(net.start(now, TransferId(i as u64), NodeId(from), NodeId(to), mb * 1_000_000));
            expected += 1;
        }
        let mut guard = 0;
        while let Some(t) = net.next_event() {
            done.extend(net.advance(t));
            guard += 1;
            prop_assert!(guard < 100_000);
        }
        prop_assert_eq!(done.len(), expected);
        prop_assert_eq!(net.in_flight(), 0);
        for d in &done {
            let solo = d.bytes as f64 / cfg.nic_bandwidth + cfg.latency.as_secs_f64();
            prop_assert!(
                d.duration().as_secs_f64() + 1e-5 >= solo,
                "transfer {:?} beat the NIC: {} < {}",
                d.id, d.duration().as_secs_f64(), solo
            );
        }
    }
}
