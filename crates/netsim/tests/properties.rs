//! Randomized (deterministic, seeded) tests for the network fabric.

use ignem_netsim::{Fabric, NetConfig, NodeId, TransferId};
use ignem_simcore::rng::SimRng;
use ignem_simcore::time::SimTime;

/// Every transfer completes exactly once, and no transfer finishes faster
/// than its ideal solo time (bytes / NIC bandwidth + latency).
#[test]
fn transfers_complete_and_respect_capacity() {
    for seed in 0..64u64 {
        let mut rng = SimRng::new(0x7E75_0001 ^ seed);
        let n = 1 + rng.index(29);
        let cfg = NetConfig::default();
        let mut net = Fabric::new(6, cfg);
        let mut expected = 0usize;
        let mut done = Vec::new();
        let mut now = SimTime::ZERO;
        for i in 0..n {
            let from = rng.index(6) as u32;
            let to = rng.index(6) as u32;
            let mb = 1 + rng.next_u64() % 1_999;
            let at_us = rng.next_u64() % 2_000_000;
            if from == to {
                continue;
            }
            let t = SimTime::from_micros(at_us);
            now = now.max(t);
            done.extend(net.start(
                now,
                TransferId(i as u64),
                NodeId(from),
                NodeId(to),
                mb * 1_000_000,
            ));
            expected += 1;
        }
        let mut guard = 0;
        while let Some(t) = net.next_event() {
            done.extend(net.advance(t));
            guard += 1;
            assert!(guard < 100_000, "seed {seed}");
        }
        assert_eq!(done.len(), expected, "seed {seed}");
        assert_eq!(net.in_flight(), 0, "seed {seed}");
        for d in &done {
            let solo = d.bytes as f64 / cfg.nic_bandwidth + cfg.latency.as_secs_f64();
            assert!(
                d.duration().as_secs_f64() + 1e-5 >= solo,
                "seed {seed}: transfer {:?} beat the NIC: {} < {}",
                d.id,
                d.duration().as_secs_f64(),
                solo
            );
        }
    }
}
