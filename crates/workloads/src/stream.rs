//! Streaming trace replay: a pull-based, unbounded job-arrival iterator.
//!
//! The preloaded workloads ([`swim`](crate::swim), [`tpcds`](crate::tpcds))
//! materialise every planned job up front — fine for 200 jobs, hopeless
//! for a month of the Google trace (§II: 12k servers, hundreds of
//! thousands of jobs). This module generates the same statistical shape
//! *lazily*: [`ReplayStream`] is an `Iterator` that synthesises the next
//! arrival on demand from a self-contained RNG, so the simulator can admit
//! jobs one at a time and never holds the whole trace in memory.
//!
//! Determinism contract: a stream is a pure function of its
//! [`ReplayConfig`] and seed, `Clone` forks the exact sequence position
//! (the world snapshot machinery relies on this), and arrivals are emitted
//! in nondecreasing submit order — the order a simulator admits them.
//!
//! Job statistics mirror [`google`](crate::google): Poisson arrivals,
//! log-normal queueing delay (the paper's 8.8 s mean / 1.8 s median
//! lead-time), and a heavy-tailed per-job input size derived from the
//! read-time distribution at a nominal disk bandwidth. Input files are
//! generated alongside ([`replay_files`]) so a driver can preload the DFS
//! namespace while still streaming the jobs themselves.

use ignem_compute::job::{JobInput, JobSpec, SubmitOptions};
use ignem_simcore::dist::{Distribution, Exponential, LogNormal};
use ignem_simcore::rng::SimRng;
use ignem_simcore::time::SimDuration;
use ignem_simcore::units::MIB;

/// Parameters of a streamed trace replay. Defaults reproduce the Google
/// trace statistics at the paper's scale: ~20k jobs/day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayConfig {
    /// Jobs to emit; `None` streams forever (the caller bounds the run by
    /// simulated time instead).
    pub jobs: Option<u64>,
    /// Mean arrival rate (jobs per second; Poisson process). The default
    /// is the trace's 20 000 jobs / 24 h.
    pub arrivals_per_sec: f64,
    /// Queueing-time median in seconds (paper: 1.8 s).
    pub queue_median: f64,
    /// Queueing-time mean in seconds (paper: 8.8 s).
    pub queue_mean: f64,
    /// Read-time median in seconds (calibrated in [`crate::google`]).
    pub read_median: f64,
    /// Read-time log-sigma (tail heaviness).
    pub read_sigma: f64,
    /// Nominal single-disk bandwidth (bytes/s) converting a job's
    /// read-time draw into an input size.
    pub read_bandwidth: f64,
    /// Input-size clamp, low end (degenerate draws still make one block).
    pub min_input_bytes: u64,
    /// Input-size clamp, high end (keeps the tail from dominating a node).
    pub max_input_bytes: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            jobs: None,
            arrivals_per_sec: 20_000.0 / 86_400.0,
            queue_median: 1.8,
            queue_mean: 8.8,
            read_median: (-1.46f64).exp(),
            read_sigma: 1.5,
            read_bandwidth: 128.0 * MIB as f64,
            min_input_bytes: 4 * MIB,
            max_input_bytes: 1024 * MIB,
        }
    }
}

/// One streamed arrival: when the job is submitted and what it runs.
#[derive(Debug, Clone)]
pub struct JobArrival {
    /// Zero-based arrival index (names and input files derive from it).
    pub index: u64,
    /// Display name (`google-<index>`).
    pub name: String,
    /// Submission offset from the start of the run; nondecreasing across
    /// the stream.
    pub submit: SimDuration,
    /// The job body: a single migrating stage reading this arrival's
    /// input file, with the trace's queueing delay as extra lead-time.
    pub spec: JobSpec,
    /// The input file's size (same value [`replay_files`] assigns it).
    pub input_bytes: u64,
}

/// The DFS path of arrival `index`'s input file.
pub fn replay_file_path(index: u64) -> String {
    format!("/google/in{index}")
}

/// The lazily generated arrival stream. See the module docs for the
/// determinism contract.
#[derive(Debug, Clone)]
pub struct ReplayStream {
    cfg: ReplayConfig,
    rng: SimRng,
    emitted: u64,
    /// Running arrival clock in seconds (gaps accumulate exactly).
    clock_secs: f64,
}

impl ReplayStream {
    /// A stream of arrivals, a pure function of `(cfg, seed)`.
    pub fn new(cfg: ReplayConfig, seed: u64) -> Self {
        ReplayStream {
            cfg,
            rng: SimRng::new(seed),
            emitted: 0,
            clock_secs: 0.0,
        }
    }

    /// One input-size draw: a read-time sample converted to bytes at the
    /// nominal bandwidth, clamped to the configured range.
    fn input_bytes(cfg: &ReplayConfig, rng: &mut SimRng) -> u64 {
        let read = LogNormal::new(cfg.read_median.ln(), cfg.read_sigma);
        let secs = read.sample(rng);
        let bytes = (secs * cfg.read_bandwidth) as u64;
        bytes.clamp(cfg.min_input_bytes, cfg.max_input_bytes)
    }
}

impl Iterator for ReplayStream {
    type Item = JobArrival;

    fn next(&mut self) -> Option<JobArrival> {
        if self.cfg.jobs.is_some_and(|n| self.emitted >= n) {
            return None;
        }
        let index = self.emitted;
        self.emitted += 1;
        // Gap and queueing delay come from the stream rng in a fixed
        // order; the input size comes from the per-index namespace stream
        // (see `FILE_SIZE_SALT`) so it matches the preloaded file.
        let gap = Exponential::new(self.cfg.arrivals_per_sec.max(1e-12));
        self.clock_secs += gap.sample(&mut self.rng);
        let queue = LogNormal::from_median_mean(self.cfg.queue_median, self.cfg.queue_mean);
        let lead = queue.sample(&mut self.rng);
        let input_bytes = Self::input_bytes(&self.cfg, &mut size_rng(index));

        let name = format!("google-{index}");
        let mut spec = JobSpec::new(
            name.clone(),
            JobInput::DfsFiles(vec![replay_file_path(index)]),
        );
        // Trace jobs are read-dominated: modest shuffle/output, mappers
        // paced like the wordcount model.
        spec.shuffle_bytes = (input_bytes / 100).max(1);
        spec.output_bytes = (input_bytes / 200).max(1);
        spec.reducers = 1;
        spec.map_cpu_rate = 400e6;
        spec.reduce_cpu_rate = 50e6;
        spec.submit = SubmitOptions::with_migration();
        spec.submit.extra_lead_time = SimDuration::from_secs_f64(lead);
        Some(JobArrival {
            index,
            name,
            submit: SimDuration::from_secs_f64(self.clock_secs),
            spec,
            input_bytes,
        })
    }
}

/// Salt for the per-index input-size stream. File sizes are a property of
/// the DFS namespace, not of any particular arrival stream: both
/// [`ReplayStream`] and [`replay_files`] derive the size of file `index`
/// from this salt alone, so a driver can preload the namespace and then
/// stream jobs against it with any seed.
const FILE_SIZE_SALT: u64 = 0xF11E_512E;

/// The size stream of input file `index`.
fn size_rng(index: u64) -> SimRng {
    SimRng::new(FILE_SIZE_SALT ^ index)
}

/// The input-file namespace for the first `count` arrivals — `(path,
/// bytes)` pairs ready for DFS preloading. Sizes are bit-identical to the
/// [`JobArrival::input_bytes`] any stream over `cfg` emits.
pub fn replay_files(cfg: &ReplayConfig, count: u64) -> Vec<(String, u64)> {
    (0..count)
        .map(|i| {
            let mut rng = size_rng(i);
            (
                replay_file_path(i),
                ReplayStream::input_bytes(cfg, &mut rng),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_clone_forks_position() {
        let cfg = ReplayConfig {
            jobs: Some(64),
            ..ReplayConfig::default()
        };
        let a: Vec<_> = ReplayStream::new(cfg, 9).collect();
        let b: Vec<_> = ReplayStream::new(cfg, 9).collect();
        assert_eq!(a.len(), 64);
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.submit == y.submit && x.input_bytes == y.input_bytes));

        let mut s = ReplayStream::new(cfg, 9);
        for _ in 0..10 {
            s.next();
        }
        let fork = s.clone();
        let rest_a: Vec<_> = s.map(|j| j.submit).collect();
        let rest_b: Vec<_> = fork.map(|j| j.submit).collect();
        assert_eq!(rest_a, rest_b);
    }

    #[test]
    fn arrivals_are_time_ordered_and_named_by_index() {
        let cfg = ReplayConfig {
            jobs: Some(128),
            ..ReplayConfig::default()
        };
        let jobs: Vec<_> = ReplayStream::new(cfg, 3).collect();
        assert!(jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
        assert_eq!(jobs[5].name, "google-5");
        assert!(jobs[5].spec.submit.migrate.is_some());
    }

    #[test]
    fn files_match_stream_sizes() {
        let cfg = ReplayConfig {
            jobs: Some(32),
            ..ReplayConfig::default()
        };
        let files = replay_files(&cfg, 32);
        let jobs: Vec<_> = ReplayStream::new(cfg, 77).collect();
        for j in &jobs {
            let (path, bytes) = &files[j.index as usize];
            assert_eq!(*path, replay_file_path(j.index));
            assert_eq!(*bytes, j.input_bytes);
        }
    }

    #[test]
    fn arrival_rate_matches_config() {
        let cfg = ReplayConfig {
            jobs: Some(5_000),
            ..ReplayConfig::default()
        };
        let jobs: Vec<_> = ReplayStream::new(cfg, 1).collect();
        let span = jobs.last().unwrap().submit.as_secs_f64();
        let rate = jobs.len() as f64 / span;
        let target = cfg.arrivals_per_sec;
        assert!(
            (rate - target).abs() / target < 0.1,
            "rate {rate} vs target {target}"
        );
    }
}
