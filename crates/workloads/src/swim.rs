//! SWIM-style trace generation.
//!
//! The paper's headline workload is the first 200 jobs of the SWIM
//! Facebook trace, scaled to its 8-node cluster (§IV-B1):
//!
//! * total input across all jobs: **170 GB**;
//! * **85% of jobs read ≤ 64 MB**; the largest read up to **24 GB**
//!   ("abundance of short jobs and a heavy tail");
//! * inter-job arrival times reduced by 50%.
//!
//! The published SWIM repository is unavailable offline, so
//! [`SwimTrace::generate`] synthesises a trace with exactly those published
//! properties: a body of small jobs, a Pareto tail rescaled so the totals
//! match, and exponential arrivals. Given a seed the trace is fully
//! deterministic.

use ignem_simcore::dist::{Distribution, Exponential};
use ignem_simcore::rng::SimRng;
use ignem_simcore::time::SimDuration;
use ignem_simcore::units::{GB, MB};

/// One SWIM trace entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwimJob {
    /// Submission offset from workload start.
    pub submit: SimDuration,
    /// Total map input bytes.
    pub input_bytes: u64,
    /// Map → reduce shuffle bytes (0 for map-only jobs).
    pub shuffle_bytes: u64,
    /// Reduce output bytes.
    pub output_bytes: u64,
}

/// Configuration for SWIM trace synthesis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwimConfig {
    /// Number of jobs (paper: 200).
    pub jobs: usize,
    /// Total input bytes across all jobs (paper: 170 GB).
    pub total_input: u64,
    /// Fraction of jobs reading at most `small_max` (paper: 0.85).
    pub small_fraction: f64,
    /// The "small job" input ceiling (paper: 64 MB).
    pub small_max: u64,
    /// The largest job input (paper: 24 GB).
    pub largest: u64,
    /// Mean inter-arrival time **after** the paper's 50% reduction.
    pub mean_interarrival: SimDuration,
}

impl Default for SwimConfig {
    fn default() -> Self {
        SwimConfig {
            jobs: 200,
            total_input: 170 * GB,
            small_fraction: 0.85,
            small_max: 64 * MB,
            largest: 24 * GB,
            mean_interarrival: SimDuration::from_secs_f64(8.0),
        }
    }
}

/// A complete synthesised SWIM trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SwimTrace {
    /// Jobs in submission order.
    pub jobs: Vec<SwimJob>,
}

impl SwimTrace {
    /// Synthesises a trace with the published SWIM shape (see module docs).
    ///
    /// # Panics
    ///
    /// Panics on a config with no jobs, a zero total, or
    /// `small_fraction` outside `[0, 1)`.
    pub fn generate(config: &SwimConfig, rng: &mut SimRng) -> Self {
        assert!(config.jobs > 0, "no jobs");
        assert!(config.total_input > 0, "zero total input");
        assert!(
            (0.0..1.0).contains(&config.small_fraction),
            "bad small fraction"
        );
        let n_small = ((config.jobs as f64) * config.small_fraction).round() as usize;
        let n_rest = config.jobs - n_small;
        let n_medium = n_rest / 2;
        let n_large = n_rest - n_medium;

        // Small jobs: log-uniform between 1 MB and small_max, the shape of
        // the short-job body in the Facebook trace.
        let mut sizes: Vec<u64> = Vec::with_capacity(config.jobs);
        let log_uniform = |rng: &mut SimRng, lo: f64, hi: f64| -> f64 {
            (lo.ln() + rng.uniform() * (hi.ln() - lo.ln())).exp()
        };
        for _ in 0..n_small {
            sizes.push(log_uniform(rng, MB as f64, config.small_max as f64).round() as u64);
        }
        // Medium jobs: between the small ceiling and 8x it (the Fig. 5
        // 64–512 MB bin).
        let medium_hi = (config.small_max * 8).min(config.largest) as f64;
        for _ in 0..n_medium {
            sizes.push(log_uniform(rng, config.small_max as f64 + 1.0, medium_hi).round() as u64);
        }
        let body_total: u64 = sizes.iter().sum();

        // Large tail: log-uniform draws above the medium ceiling, the
        // maximum pinned to `largest`, then iteratively rescaled (with
        // clamping) so the workload total matches the published 170 GB.
        if n_large > 0 {
            let lo = medium_hi;
            let hi = config.largest as f64;
            let mut raw: Vec<f64> = (0..n_large).map(|_| log_uniform(rng, lo, hi)).collect();
            // Pin the current maximum to exactly `largest`.
            let (max_idx, _) = raw
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("n_large > 0");
            raw[max_idx] = hi;
            let budget = (config.total_input.saturating_sub(body_total) as f64).max(hi);
            // Iterative proportional fitting of the non-pinned entries.
            for _ in 0..64 {
                let total: f64 = raw.iter().sum();
                let err = (total - budget).abs() / budget;
                if err < 0.002 {
                    break;
                }
                let adjustable: f64 = raw
                    .iter()
                    .enumerate()
                    .filter(|&(i, &v)| i != max_idx && v < hi)
                    .map(|(_, &v)| v)
                    .sum();
                if adjustable <= 0.0 {
                    break;
                }
                let fixed = total - adjustable;
                let scale = ((budget - fixed) / adjustable).max(0.0);
                for (i, v) in raw.iter_mut().enumerate() {
                    if i != max_idx && *v < hi {
                        *v = (*v * scale).clamp(lo, hi);
                    }
                }
            }
            let mut large: Vec<u64> = raw.into_iter().map(|r| r.round() as u64).collect();
            rng.shuffle(&mut large);
            sizes.extend(large);
        }
        rng.shuffle(&mut sizes);

        // Shuffle/output shape: the Facebook workload is dominated by
        // filter/aggregate jobs (large input → small output) with a minority
        // of shuffle-heavy jobs [Chen et al., VLDB'12].
        let arrivals = Exponential::from_mean(config.mean_interarrival.as_secs_f64());
        let mut t = SimDuration::ZERO;
        let jobs = sizes
            .into_iter()
            .map(|input| {
                // Shuffle-stage likelihood and weight grow with job size:
                // the Facebook trace's big jobs are aggregation/join shaped
                // while the short-job body is dominated by filters.
                let shuffle_prob = if input > 8 * config.small_max {
                    1.0
                } else {
                    0.35
                };
                let has_shuffle = rng.uniform() < shuffle_prob;
                let (shuffle, output) = if has_shuffle {
                    let sh = (input as f64 * rng.uniform_range(0.2, 0.6)) as u64;
                    let out = (sh as f64 * rng.uniform_range(0.2, 0.6)) as u64;
                    (sh.max(1), out.max(1))
                } else {
                    (0, (input as f64 * rng.uniform_range(0.01, 0.2)) as u64)
                };
                let job = SwimJob {
                    submit: t,
                    input_bytes: input.max(1),
                    shuffle_bytes: shuffle,
                    output_bytes: output,
                };
                t += SimDuration::from_secs_f64(arrivals.sample(rng));
                job
            })
            .collect();
        SwimTrace { jobs }
    }

    /// Total input bytes.
    pub fn total_input(&self) -> u64 {
        self.jobs.iter().map(|j| j.input_bytes).sum()
    }

    /// The largest single-job input.
    pub fn largest_input(&self) -> u64 {
        self.jobs.iter().map(|j| j.input_bytes).max().unwrap_or(0)
    }

    /// Fraction of jobs with input at most `ceiling`.
    pub fn fraction_at_most(&self, ceiling: u64) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs
            .iter()
            .filter(|j| j.input_bytes <= ceiling)
            .count() as f64
            / self.jobs.len() as f64
    }

    /// The workload makespan lower bound (last submission time).
    pub fn last_submit(&self) -> SimDuration {
        self.jobs
            .iter()
            .map(|j| j.submit)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

/// The paper's Fig. 5 job-size bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeBin {
    /// ≤ 64 MB.
    Small,
    /// 64–512 MB.
    Medium,
    /// > 512 MB.
    Large,
}

impl SizeBin {
    /// Bins an input size the way Fig. 5 does.
    pub fn of(input_bytes: u64) -> SizeBin {
        if input_bytes <= 64 * MB {
            SizeBin::Small
        } else if input_bytes <= 512 * MB {
            SizeBin::Medium
        } else {
            SizeBin::Large
        }
    }
}

impl std::fmt::Display for SizeBin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SizeBin::Small => write!(f, "<=64MB"),
            SizeBin::Medium => write!(f, "64-512MB"),
            SizeBin::Large => write!(f, ">512MB"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> SwimTrace {
        SwimTrace::generate(&SwimConfig::default(), &mut SimRng::new(20180615))
    }

    #[test]
    fn matches_published_job_count_and_total() {
        let t = trace();
        assert_eq!(t.jobs.len(), 200);
        let total = t.total_input() as f64;
        let want = (170 * GB) as f64;
        assert!(
            (total - want).abs() / want < 0.02,
            "total {} vs 170GB",
            total
        );
    }

    #[test]
    fn small_job_fraction_is_85_percent() {
        let t = trace();
        let frac = t.fraction_at_most(64 * MB);
        assert!((frac - 0.85).abs() < 0.03, "small fraction {frac}");
    }

    #[test]
    fn largest_job_is_24_gb() {
        let t = trace();
        let largest = t.largest_input() as f64 / GB as f64;
        assert!((largest - 24.0).abs() < 0.5, "largest {largest} GB");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SwimTrace::generate(&SwimConfig::default(), &mut SimRng::new(9));
        let b = SwimTrace::generate(&SwimConfig::default(), &mut SimRng::new(9));
        assert_eq!(a, b);
        let c = SwimTrace::generate(&SwimConfig::default(), &mut SimRng::new(10));
        assert_ne!(a, c);
    }

    #[test]
    fn submissions_are_nondecreasing() {
        let t = trace();
        for w in t.jobs.windows(2) {
            assert!(w[0].submit <= w[1].submit);
        }
        assert!(t.last_submit() > SimDuration::ZERO);
    }

    #[test]
    fn shuffle_jobs_exist_and_are_bounded() {
        let t = trace();
        let with_shuffle = t.jobs.iter().filter(|j| j.shuffle_bytes > 0).count();
        assert!(with_shuffle > 40 && with_shuffle < 140, "{with_shuffle}");
        for j in &t.jobs {
            assert!(j.shuffle_bytes <= j.input_bytes);
        }
    }

    #[test]
    fn size_bins_match_figure5() {
        assert_eq!(SizeBin::of(64 * MB), SizeBin::Small);
        assert_eq!(SizeBin::of(65 * MB), SizeBin::Medium);
        assert_eq!(SizeBin::of(512 * MB), SizeBin::Medium);
        assert_eq!(SizeBin::of(513 * MB), SizeBin::Large);
        assert_eq!(SizeBin::of(0), SizeBin::Small);
    }

    #[test]
    fn all_bins_are_populated() {
        let t = trace();
        let mut small = 0;
        let mut medium = 0;
        let mut large = 0;
        for j in &t.jobs {
            match SizeBin::of(j.input_bytes) {
                SizeBin::Small => small += 1,
                SizeBin::Medium => medium += 1,
                SizeBin::Large => large += 1,
            }
        }
        assert!(
            small > 0 && medium > 0 && large > 0,
            "{small}/{medium}/{large}"
        );
    }
}
