//! Standalone job models: sort and wordcount (paper §IV-B2, Table III,
//! Fig. 8).

use ignem_compute::job::{JobInput, JobSpec};
use ignem_simcore::units::GB;

/// The paper's sort job: 40 GB of random text, shuffle-heavy and
/// write-heavy ("jobs that have significant computation and write a lot of
/// data"). Input ≈ shuffle ≈ output.
///
/// `input_files` are the DFS paths holding the dataset.
pub fn sort_job(input_files: Vec<String>, input_bytes: u64, reducers: usize) -> JobSpec {
    let mut j = JobSpec::new("sort", JobInput::DfsFiles(input_files));
    j.shuffle_bytes = input_bytes;
    j.output_bytes = input_bytes;
    j.reducers = reducers.max(1);
    // Sort mappers are pass-through partitioners: cheap CPU.
    j.map_cpu_rate = 400e6;
    // Reducers merge-sort their partition with spill/merge passes: the
    // dominant non-read cost of sort (why even the all-in-RAM sort takes
    // 75 s in the paper's Table III).
    j.reduce_cpu_rate = 30e6;
    j
}

/// The default sort dataset size (paper: "a 40GB dataset of random text").
pub const SORT_INPUT_BYTES: u64 = 40 * GB;

/// The paper's wordcount job over `input_bytes` of text (the Fig. 8 sweep
/// varies this from 1 GB to 12 GB). Wordcount aggregates aggressively:
/// tiny shuffle and output, CPU-bound map.
pub fn wordcount_job(input_files: Vec<String>, input_bytes: u64) -> JobSpec {
    let mut j = JobSpec::new("wordcount", JobInput::DfsFiles(input_files));
    j.shuffle_bytes = (input_bytes / 100).max(1);
    j.output_bytes = (input_bytes / 200).max(1);
    j.reducers = 1;
    // Java wordcount is CPU-bound: tokenising + hashmap updates.
    j.map_cpu_rate = 35e6;
    j.reduce_cpu_rate = 50e6;
    j
}

/// The Fig. 8 sweep points (GB of wordcount input).
pub const WORDCOUNT_SWEEP_GB: [u64; 6] = [1, 2, 4, 6, 8, 12];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_moves_its_input_through_shuffle_and_output() {
        let j = sort_job(vec!["/sort/in".into()], 40 * GB, 48);
        j.validate();
        assert_eq!(j.shuffle_bytes, 40 * GB);
        assert_eq!(j.output_bytes, 40 * GB);
        assert_eq!(j.reducers, 48);
    }

    #[test]
    fn wordcount_is_aggregation_shaped() {
        let j = wordcount_job(vec!["/wc/in".into()], 4 * GB);
        j.validate();
        assert!(j.shuffle_bytes < j.output_bytes * 10);
        assert!(j.shuffle_bytes < 4 * GB / 50);
        assert!(j.map_cpu_rate < 100e6, "wordcount must be CPU-bound");
    }

    #[test]
    fn sweep_covers_paper_range() {
        assert_eq!(WORDCOUNT_SWEEP_GB.first(), Some(&1));
        assert_eq!(WORDCOUNT_SWEEP_GB.last(), Some(&12));
    }

    #[test]
    fn reducers_never_zero() {
        let j = sort_job(vec!["/s".into()], GB, 0);
        assert_eq!(j.reducers, 1);
    }
}
