//! Hive / TPC-DS query models (paper §IV-B3, Fig. 9).
//!
//! The paper runs a set of TPC-DS queries on Hive; each query compiles to a
//! sequence of MapReduce jobs whose first stage scans cold table data (the
//! part Ignem accelerates) and whose later stages consume freshly written —
//! hence page-cache-resident — intermediates. The Hive hook migrates the
//! query's table inputs right after compilation.
//!
//! Each [`HiveQuery`] carries the two properties that determine Ignem's
//! benefit: the **input size** (Fig. 9b) and the scan **selectivity**
//! (how much the first stage filters). The query list mirrors Fig. 9:
//! sorted by input size, with q82/q25/q29 as the large-input tail the paper
//! singles out, and q3 among the highly selective small ones where Ignem
//! wins up to 34%.

use ignem_compute::job::{JobInput, JobSpec, SubmitOptions};
use ignem_simcore::units::GB;

/// One modelled TPC-DS query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HiveQuery {
    /// TPC-DS query number (display name `q<number>`).
    pub number: u32,
    /// Bytes of table data the query's scan stage reads.
    pub input_bytes: u64,
    /// Fraction of the scanned bytes surviving the stage-1 filter
    /// (SELECT columns + WHERE predicates).
    pub selectivity: f64,
    /// Number of MapReduce stages the query compiles to.
    pub stages: usize,
}

impl HiveQuery {
    /// Display name (`q3`).
    pub fn name(&self) -> String {
        format!("q{}", self.number)
    }

    /// DFS path of the query's table data.
    pub fn table_path(&self) -> String {
        format!("/tpcds/q{}", self.number)
    }

    /// Compiles the query into its MapReduce stage jobs. Stage 1 scans the
    /// cold table files; stages ≥ 2 read cached intermediates. `migrate`
    /// controls whether the Hive→Ignem hook is active for stage 1.
    ///
    /// # Panics
    ///
    /// Panics if the query has zero stages.
    pub fn jobs(&self, migrate: bool) -> Vec<JobSpec> {
        assert!(self.stages > 0, "query with no stages");
        let mut out = Vec::with_capacity(self.stages);
        let mut stage_input = self.input_bytes;
        for stage in 0..self.stages {
            let stage_output = ((stage_input as f64)
                * if stage == 0 { self.selectivity } else { 0.5 })
            .max(1.0) as u64;
            let mut j = if stage == 0 {
                let mut j = JobSpec::new(
                    format!("{}-s1", self.name()),
                    JobInput::DfsFiles(vec![self.table_path()]),
                );
                if migrate {
                    j.submit = SubmitOptions::with_migration();
                }
                // Hive scan operators: column decode + predicate evaluation.
                j.map_cpu_rate = 120e6;
                j
            } else {
                let mut j = JobSpec::new(
                    format!("{}-s{}", self.name(), stage + 1),
                    JobInput::Cached(stage_input),
                );
                // Join/aggregate stages over the (small) survivors.
                j.map_cpu_rate = 80e6;
                j
            };
            j.shuffle_bytes = stage_output;
            j.output_bytes = stage_output;
            j.reducers = ((stage_output / (128 << 20)) as usize).clamp(1, 16);
            j.reduce_cpu_rate = 100e6;
            out.push(j);
            stage_input = stage_output;
        }
        out
    }
}

/// The Fig. 9 query set, sorted by input size as the figure is. The tail
/// (q82, q25, q29) carries the large inputs the paper calls out.
pub fn fig9_queries() -> Vec<HiveQuery> {
    vec![
        HiveQuery {
            number: 12,
            input_bytes: (1.2 * GB as f64) as u64,
            selectivity: 0.04,
            stages: 2,
        },
        HiveQuery {
            number: 3,
            input_bytes: (2.4 * GB as f64) as u64,
            selectivity: 0.02,
            stages: 2,
        },
        HiveQuery {
            number: 15,
            input_bytes: (2.8 * GB as f64) as u64,
            selectivity: 0.05,
            stages: 2,
        },
        HiveQuery {
            number: 19,
            input_bytes: (3.3 * GB as f64) as u64,
            selectivity: 0.05,
            stages: 3,
        },
        HiveQuery {
            number: 42,
            input_bytes: (3.6 * GB as f64) as u64,
            selectivity: 0.03,
            stages: 2,
        },
        HiveQuery {
            number: 52,
            input_bytes: (3.9 * GB as f64) as u64,
            selectivity: 0.03,
            stages: 2,
        },
        HiveQuery {
            number: 7,
            input_bytes: (5.5 * GB as f64) as u64,
            selectivity: 0.06,
            stages: 3,
        },
        HiveQuery {
            number: 82,
            input_bytes: 11 * GB,
            selectivity: 0.08,
            stages: 3,
        },
        HiveQuery {
            number: 25,
            input_bytes: 14 * GB,
            selectivity: 0.08,
            stages: 3,
        },
        HiveQuery {
            number: 29,
            input_bytes: 16 * GB,
            selectivity: 0.08,
            stages: 3,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_are_sorted_by_input_size() {
        let qs = fig9_queries();
        for w in qs.windows(2) {
            assert!(w[0].input_bytes <= w[1].input_bytes);
        }
    }

    #[test]
    fn paper_named_queries_present() {
        let qs = fig9_queries();
        let names: Vec<String> = qs.iter().map(|q| q.name()).collect();
        for name in ["q3", "q82", "q25", "q29"] {
            assert!(names.iter().any(|n| n == name), "missing {name}");
        }
        // The large-input tail is exactly the paper's trio.
        assert_eq!(names[7..], ["q82".to_string(), "q25".into(), "q29".into()]);
    }

    #[test]
    fn stage1_reads_cold_tables_later_stages_cached() {
        let q = fig9_queries()[1]; // q3
        let jobs = q.jobs(true);
        assert_eq!(jobs.len(), q.stages);
        assert!(matches!(jobs[0].input, JobInput::DfsFiles(_)));
        assert!(jobs[0].submit.migrate.is_some());
        for j in &jobs[1..] {
            assert!(matches!(j.input, JobInput::Cached(_)));
            assert!(j.submit.migrate.is_none());
        }
    }

    #[test]
    fn migration_flag_controls_hook() {
        let q = fig9_queries()[0];
        assert!(q.jobs(false)[0].submit.migrate.is_none());
        assert!(q.jobs(true)[0].submit.migrate.is_some());
    }

    #[test]
    fn stages_shrink_data() {
        let q = fig9_queries()[2];
        let jobs = q.jobs(false);
        assert!(jobs[0].shuffle_bytes < q.input_bytes / 10);
        if jobs.len() > 1 {
            if let JobInput::Cached(b) = jobs[1].input {
                assert_eq!(b, jobs[0].output_bytes);
            } else {
                panic!("stage 2 must be cached");
            }
        }
    }

    #[test]
    fn specs_validate() {
        for q in fig9_queries() {
            for j in q.jobs(true) {
                j.validate();
            }
        }
    }
}
