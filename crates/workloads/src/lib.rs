//! # ignem-workloads — workload generators
//!
//! Every workload the paper evaluates, synthesised deterministically:
//!
//! * [`swim`] — the SWIM/Facebook 200-job trace (Tables I–II, Figs. 5–7);
//! * [`google`] — the Google-cluster-trace statistics and the §II
//!   feasibility analysis (Figs. 3–4);
//! * [`jobs`] — standalone sort (Table III) and wordcount (Fig. 8);
//! * [`tpcds`] — the Hive TPC-DS query set (Fig. 9);
//! * [`stream`] — a pull-based unbounded arrival iterator replaying the
//!   Google-trace shape lazily for datacenter-scale runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod google;
pub mod iterative;
pub mod jobs;
pub mod stream;
pub mod swim;
pub mod tpcds;

/// Commonly used items.
pub mod prelude {
    pub use crate::google::{
        GoogleTrace, GoogleTraceConfig, MemorySufficiency, UtilizationTimelines,
    };
    pub use crate::iterative::IterativeJob;
    pub use crate::jobs::{sort_job, wordcount_job, SORT_INPUT_BYTES, WORDCOUNT_SWEEP_GB};
    pub use crate::stream::{replay_files, JobArrival, ReplayConfig, ReplayStream};
    pub use crate::swim::{SizeBin, SwimConfig, SwimJob, SwimTrace};
    pub use crate::tpcds::{fig9_queries, HiveQuery};
}
