//! Synthetic Google-cluster-trace generation and the paper's §II analysis.
//!
//! Section II of the paper argues migration is feasible by analysing the
//! public Google cluster trace. The trace itself (≈40 GB of CSV) is not
//! available offline, so this module synthesises a trace calibrated to the
//! **statistics the paper reports**, then re-implements the paper's
//! analysis on top:
//!
//! * job queueing times (= lead-times): mean **8.8 s**, median **1.8 s**
//!   → a log-normal with exactly those moments;
//! * per-job total disk-read time: heavy-tailed, tuned so that the Fig. 3
//!   analysis yields the paper's *"for 81% of jobs the lead-time is greater
//!   than the read-time"*;
//! * per-server disk utilisation (Fig. 4): task IO uniformly spread over
//!   report intervals, tuned to the paper's **3.1%** mean daily utilisation
//!   and ≤ **5%** 40-server mean.

use ignem_simcore::dist::{Distribution, Exponential, LogNormal};
use ignem_simcore::rng::SimRng;
use ignem_simcore::stats::Samples;

/// One synthesised job: its lead-time and its total disk-read demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoogleJob {
    /// Queueing delay between submission and first task start (seconds).
    pub lead_time: f64,
    /// Sum of disk IO time over all the job's tasks, as if served by one
    /// disk (seconds) — the paper's Fig. 3 comparison quantity.
    pub read_time: f64,
}

/// Trace-synthesis parameters (defaults reproduce the paper's statistics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoogleTraceConfig {
    /// Number of jobs for the Fig. 3 analysis.
    pub jobs: usize,
    /// Queueing-time median (paper: 1.8 s).
    pub queue_median: f64,
    /// Queueing-time mean (paper: 8.8 s).
    pub queue_mean: f64,
    /// Read-time median (calibrated so ~81% of jobs fit in lead-time).
    pub read_median: f64,
    /// Read-time log-sigma (tail heaviness).
    pub read_sigma: f64,
    /// Number of servers for the Fig. 4 utilisation timelines.
    pub servers: usize,
    /// Timeline length in seconds (paper plots 24 h).
    pub horizon_secs: u64,
    /// Target mean disk utilisation over the horizon (paper: 3.1% daily).
    pub mean_utilization: f64,
}

impl Default for GoogleTraceConfig {
    fn default() -> Self {
        GoogleTraceConfig {
            jobs: 20_000,
            queue_median: 1.8,
            queue_mean: 8.8,
            // Phi((mu_l - mu_r) / sqrt(sig_l^2 + sig_r^2)) = 0.81 with the
            // queue parameters above and sigma_r = 1.5 gives mu_r = -1.46.
            read_median: (-1.46f64).exp(),
            read_sigma: 1.5,
            servers: 200,
            horizon_secs: 24 * 3600,
            mean_utilization: 0.031,
        }
    }
}

/// A synthesised job population for the Fig. 3 lead-time analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct GoogleTrace {
    /// The jobs.
    pub jobs: Vec<GoogleJob>,
}

impl GoogleTrace {
    /// Synthesises `config.jobs` jobs (see module docs).
    ///
    /// # Panics
    ///
    /// Panics if the config requests zero jobs.
    pub fn generate(config: &GoogleTraceConfig, rng: &mut SimRng) -> Self {
        assert!(config.jobs > 0, "no jobs");
        let queue = LogNormal::from_median_mean(config.queue_median, config.queue_mean);
        let read = LogNormal::new(config.read_median.ln(), config.read_sigma);
        let jobs = (0..config.jobs)
            .map(|_| GoogleJob {
                lead_time: queue.sample(rng),
                read_time: read.sample(rng),
            })
            .collect();
        GoogleTrace { jobs }
    }

    /// The paper's Fig. 3 headline number: the fraction of jobs whose
    /// lead-time is at least their read-time ("81% of jobs").
    pub fn lead_time_sufficiency(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs
            .iter()
            .filter(|j| j.lead_time >= j.read_time)
            .count() as f64
            / self.jobs.len() as f64
    }

    /// Fig. 3's x-axis quantity for each job: `read_time / lead_time`
    /// (values ≤ 1 mean the whole input fits in the lead-time).
    pub fn read_to_lead_ratios(&self) -> Samples {
        self.jobs
            .iter()
            .map(|j| j.read_time / j.lead_time.max(1e-9))
            .collect()
    }

    /// Mean and median lead-time (sanity check against the paper's 8.8/1.8).
    pub fn lead_time_stats(&self) -> (f64, f64) {
        let mut s: Samples = self.jobs.iter().map(|j| j.lead_time).collect();
        (s.mean(), s.median())
    }
}

/// Per-server disk-utilisation timelines for Fig. 4, in 5-minute windows
/// (the trace's reporting granularity).
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationTimelines {
    /// `timelines[s][w]` = server `s`'s mean disk utilisation in window `w`.
    pub timelines: Vec<Vec<f64>>,
    /// Window length in seconds.
    pub window_secs: u64,
}

impl UtilizationTimelines {
    /// Synthesises per-server utilisation: servers receive Poisson IO
    /// bursts whose rate is tuned to `config.mean_utilization`, with a
    /// small population of persistently busier servers (the trace shows
    /// occasional servers spiking, which the paper's Fig. 4 displays).
    ///
    /// # Panics
    ///
    /// Panics on zero servers or a horizon shorter than one window.
    pub fn generate(config: &GoogleTraceConfig, rng: &mut SimRng) -> Self {
        const WINDOW: u64 = 300;
        assert!(config.servers > 0, "no servers");
        assert!(config.horizon_secs >= WINDOW, "horizon under one window");
        const BURST_MEAN_SECS: f64 = 20.0;
        let windows = (config.horizon_secs / WINDOW) as usize;
        let burst_secs = Exponential::from_mean(BURST_MEAN_SECS);
        let mut timelines = Vec::with_capacity(config.servers);
        for _ in 0..config.servers {
            // Per-server mean utilisation: mildly skewed around the target
            // (multiplier uniform in [0.5, 1.5], mean 1).
            let server_mean = (config.mean_utilization * (0.5 + rng.uniform())).clamp(0.001, 0.6);
            let mut busy = vec![0.0f64; windows];
            // Poisson bursts: expected busy = rate * mean_burst.
            let rate_per_sec = server_mean / BURST_MEAN_SECS;
            let mut t = 0.0f64;
            let gap = Exponential::new(rate_per_sec.max(1e-9));
            loop {
                t += gap.sample(rng);
                if t >= config.horizon_secs as f64 {
                    break;
                }
                let mut len = burst_secs.sample(rng);
                let mut at = t;
                // Spread the burst across the windows it covers.
                while len > 0.0 && at < config.horizon_secs as f64 {
                    let w = (at / WINDOW as f64) as usize;
                    let window_end = ((w + 1) * WINDOW as usize) as f64;
                    let in_window = len.min(window_end - at);
                    busy[w.min(windows - 1)] += in_window;
                    at += in_window;
                    len -= in_window;
                }
            }
            timelines.push(
                busy.into_iter()
                    .map(|b| (b / WINDOW as f64).min(1.0))
                    .collect(),
            );
        }
        UtilizationTimelines {
            timelines,
            window_secs: WINDOW,
        }
    }

    /// The mean utilisation across all servers and windows.
    pub fn overall_mean(&self) -> f64 {
        let total: f64 = self.timelines.iter().flatten().sum();
        let count: usize = self.timelines.iter().map(|t| t.len()).sum();
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Per-window mean utilisation over the first `n` servers (Fig. 4's
    /// "mean utilization for 40 servers" curve).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` servers exist.
    pub fn group_mean_timeline(&self, n: usize) -> Vec<f64> {
        assert!(n > 0 && n <= self.timelines.len(), "bad group size");
        let windows = self.timelines[0].len();
        (0..windows)
            .map(|w| self.timelines[..n].iter().map(|t| t[w]).sum::<f64>() / n as f64)
            .collect()
    }
}

/// The paper's §II-C2 worst-case memory-sufficiency analysis: "at on
/// average 10 tasks run on a server at a time … the number of tasks on a
/// server at a given time is unlikely to be greater than 50. Further,
/// assume that each of the 50 tasks is a mapper and each mapper reads a
/// large 256MB HDFS block. This means that 12.5GB of RAM is sufficient."
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorySufficiency {
    /// Concurrent tasks assumed per server (worst case).
    pub tasks_per_server: u64,
    /// Block size each task is assumed to read.
    pub block_bytes: u64,
    /// RAM required to hold every concurrent task's migrated input.
    pub required_bytes: u64,
    /// Typical server RAM for comparison.
    pub server_ram_bytes: u64,
}

impl MemorySufficiency {
    /// Computes the worst-case bound. The paper's numbers: 50 tasks ×
    /// 256 MB = 12.5 GB against hundreds of GB of server RAM.
    pub fn worst_case(tasks_per_server: u64, block_bytes: u64, server_ram_bytes: u64) -> Self {
        MemorySufficiency {
            tasks_per_server,
            block_bytes,
            required_bytes: tasks_per_server * block_bytes,
            server_ram_bytes,
        }
    }

    /// Fraction of server RAM the migration buffer needs in the worst case.
    pub fn ram_fraction(&self) -> f64 {
        self.required_bytes as f64 / self.server_ram_bytes as f64
    }

    /// Whether migration demand fits comfortably (paper's conclusion).
    pub fn is_sufficient(&self) -> bool {
        self.ram_fraction() < 0.25
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> GoogleTrace {
        GoogleTrace::generate(&GoogleTraceConfig::default(), &mut SimRng::new(2011))
    }

    #[test]
    fn lead_time_moments_match_paper() {
        let (mean, median) = trace().lead_time_stats();
        assert!((mean - 8.8).abs() < 0.5, "mean {mean}");
        assert!((median - 1.8).abs() < 0.1, "median {median}");
    }

    #[test]
    fn sufficiency_is_about_81_percent() {
        let frac = trace().lead_time_sufficiency();
        assert!((frac - 0.81).abs() < 0.02, "sufficiency {frac}");
    }

    #[test]
    fn ratios_cdf_crosses_one_at_sufficiency() {
        let t = trace();
        let mut ratios = t.read_to_lead_ratios();
        let below_one = ratios.fraction_below(1.0);
        assert!((below_one - t.lead_time_sufficiency()).abs() < 0.01);
    }

    #[test]
    fn utilization_mean_matches_paper() {
        let cfg = GoogleTraceConfig::default();
        let u = UtilizationTimelines::generate(&cfg, &mut SimRng::new(4));
        let mean = u.overall_mean();
        assert!(
            (mean - 0.031).abs() < 0.01,
            "mean utilisation {mean} vs paper 3.1%"
        );
    }

    #[test]
    fn group_mean_stays_low() {
        // Fig. 4: "the mean disk utilization of 40 randomly chosen servers
        // is at most 5%" at any point in the 24 h window.
        let cfg = GoogleTraceConfig::default();
        let u = UtilizationTimelines::generate(&cfg, &mut SimRng::new(5));
        let series = u.group_mean_timeline(40);
        let peak = series.iter().cloned().fold(0.0, f64::max);
        assert!(peak <= 0.08, "40-server mean peaked at {peak}");
    }

    #[test]
    fn individual_servers_do_spike() {
        let cfg = GoogleTraceConfig::default();
        let u = UtilizationTimelines::generate(&cfg, &mut SimRng::new(6));
        let max_any = u.timelines.iter().flatten().cloned().fold(0.0, f64::max);
        assert!(max_any > 0.10, "no server ever spikes ({max_any})");
    }

    #[test]
    fn paper_memory_sufficiency_numbers() {
        // 50 tasks × 256 MB = 12.5 GB, "a small amount" vs 128 GB servers.
        let m = MemorySufficiency::worst_case(50, 256_000_000, 128_000_000_000);
        assert_eq!(m.required_bytes, 12_800_000_000);
        assert!((m.ram_fraction() - 0.1).abs() < 0.01);
        assert!(m.is_sufficient());
        // A hypothetical tiny-RAM server would not be sufficient.
        let small = MemorySufficiency::worst_case(50, 256_000_000, 16_000_000_000);
        assert!(!small.is_sufficient());
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GoogleTraceConfig::default();
        let a = GoogleTrace::generate(&cfg, &mut SimRng::new(1));
        let b = GoogleTrace::generate(&cfg, &mut SimRng::new(1));
        assert_eq!(a, b);
    }
}
