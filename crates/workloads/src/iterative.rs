//! Iterative machine-learning job models (paper §I).
//!
//! The paper motivates cold-data migration with iterative workloads too:
//! "Reading inputs from disk can inflate the first iteration in each job by
//! 15x and 2.5x respectively, compared to later iterations" (logistic
//! regression and k-means on Spark, the paper's ref. 37). Later iterations hit the cached
//! working set; only iteration 1 reads cold data — exactly the read Ignem
//! can hide inside the lead-time.
//!
//! An iterative job is modelled as a multi-stage plan: stage 1 scans the
//! cold DFS input, stages 2..n re-scan the (now cached) working set.

use ignem_compute::job::{JobInput, JobSpec, SubmitOptions};

/// An iterative ML job specification.
#[derive(Debug, Clone, PartialEq)]
pub struct IterativeJob {
    /// Display name ("logreg", "kmeans").
    pub name: String,
    /// DFS paths of the training data.
    pub input_files: Vec<String>,
    /// Training-set size in bytes.
    pub input_bytes: u64,
    /// Number of iterations (≥ 1).
    pub iterations: usize,
    /// Per-iteration CPU rate over the training set (bytes/s). Iterative
    /// ML does meaningful math per pass, so this is well below scan speed.
    pub cpu_rate: f64,
}

impl IterativeJob {
    /// A logistic-regression-shaped job: light per-pass compute, so the
    /// cold first read dominates iteration 1 (the paper's 15× case).
    pub fn logistic_regression(
        input_files: Vec<String>,
        input_bytes: u64,
        iterations: usize,
    ) -> Self {
        IterativeJob {
            name: "logreg".into(),
            input_files,
            input_bytes,
            iterations,
            cpu_rate: 600e6,
        }
    }

    /// A k-means-shaped job: heavier per-pass compute (distance
    /// computations), so cold reads inflate iteration 1 less (the paper's
    /// 2.5× case).
    pub fn kmeans(input_files: Vec<String>, input_bytes: u64, iterations: usize) -> Self {
        IterativeJob {
            name: "kmeans".into(),
            input_files,
            input_bytes,
            iterations,
            cpu_rate: 60e6,
        }
    }

    /// Compiles the job into its per-iteration stages. Iteration 1 scans
    /// the cold DFS input (with the Ignem hook if `migrate`); later
    /// iterations scan the cached working set.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is zero or the file list is empty.
    pub fn stages(&self, migrate: bool) -> Vec<JobSpec> {
        assert!(self.iterations > 0, "zero iterations");
        assert!(!self.input_files.is_empty(), "no input files");
        (0..self.iterations)
            .map(|i| {
                let mut spec = JobSpec::new(
                    format!("{}-iter{}", self.name, i + 1),
                    if i == 0 {
                        JobInput::DfsFiles(self.input_files.clone())
                    } else {
                        JobInput::Cached(self.input_bytes)
                    },
                );
                spec.map_cpu_rate = self.cpu_rate;
                // Model updates are tiny relative to the training set.
                spec.shuffle_bytes = (self.input_bytes / 10_000).max(1);
                spec.output_bytes = (self.input_bytes / 10_000).max(1);
                spec.reducers = 1;
                spec.reduce_cpu_rate = 100e6;
                if migrate && i == 0 {
                    spec.submit = SubmitOptions::with_migration();
                }
                spec
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files() -> Vec<String> {
        vec!["/ml/train".into()]
    }

    #[test]
    fn first_stage_is_cold_rest_cached() {
        let j = IterativeJob::logistic_regression(files(), 1 << 30, 5);
        let stages = j.stages(true);
        assert_eq!(stages.len(), 5);
        assert!(matches!(stages[0].input, JobInput::DfsFiles(_)));
        assert!(stages[0].submit.migrate.is_some());
        for s in &stages[1..] {
            assert!(matches!(s.input, JobInput::Cached(_)));
            assert!(s.submit.migrate.is_none());
        }
    }

    #[test]
    fn kmeans_is_compute_heavier_than_logreg() {
        let lr = IterativeJob::logistic_regression(files(), 1 << 30, 3);
        let km = IterativeJob::kmeans(files(), 1 << 30, 3);
        assert!(km.cpu_rate < lr.cpu_rate);
    }

    #[test]
    fn migrate_flag_only_affects_stage_one() {
        let j = IterativeJob::kmeans(files(), 1 << 30, 2);
        assert!(j.stages(false)[0].submit.migrate.is_none());
        assert!(j.stages(true)[0].submit.migrate.is_some());
    }

    #[test]
    fn specs_validate() {
        for s in IterativeJob::kmeans(files(), 1 << 30, 4).stages(true) {
            s.validate();
        }
    }

    #[test]
    #[should_panic(expected = "zero iterations")]
    fn zero_iterations_rejected() {
        IterativeJob::kmeans(files(), 1, 0).stages(false);
    }
}
