//! Property-based tests for the workload generators.

use ignem_simcore::rng::SimRng;
use ignem_simcore::time::SimDuration;
use ignem_simcore::units::{GB, MB};
use ignem_workloads::swim::{SwimConfig, SwimTrace};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any seed and any reasonable scale produce a trace honouring the
    /// published SWIM invariants.
    #[test]
    fn swim_invariants_hold_for_any_seed(
        seed in 0u64..1_000_000,
        jobs in 40usize..300,
    ) {
        let cfg = SwimConfig {
            jobs,
            total_input: (jobs as u64) * 850 * MB, // paper's per-job average
            largest: 24 * GB,
            mean_interarrival: SimDuration::from_secs(8),
            ..SwimConfig::default()
        };
        let t = SwimTrace::generate(&cfg, &mut SimRng::new(seed));
        prop_assert_eq!(t.jobs.len(), jobs);
        // Totals within a few percent of the target.
        let total = t.total_input() as f64;
        let want = cfg.total_input as f64;
        prop_assert!((total - want).abs() / want < 0.06, "total off: {} vs {}", total, want);
        // Small-job fraction within tolerance.
        let frac = t.fraction_at_most(cfg.small_max);
        prop_assert!((frac - 0.85).abs() < 0.05, "small fraction {}", frac);
        // Nobody exceeds the stated maximum; shuffles never exceed inputs.
        for j in &t.jobs {
            prop_assert!(j.input_bytes <= cfg.largest);
            prop_assert!(j.shuffle_bytes <= j.input_bytes);
            prop_assert!(j.input_bytes >= 1);
        }
        // Arrivals are sorted.
        for w in t.jobs.windows(2) {
            prop_assert!(w[0].submit <= w[1].submit);
        }
    }
}
