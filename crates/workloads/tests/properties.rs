//! Randomized (deterministic, seeded) tests for the workload generators.

use ignem_simcore::rng::SimRng;
use ignem_simcore::time::SimDuration;
use ignem_simcore::units::{GB, MB};
use ignem_workloads::swim::{SwimConfig, SwimTrace};

/// Any seed and any reasonable scale produce a trace honouring the
/// published SWIM invariants.
#[test]
fn swim_invariants_hold_for_any_seed() {
    for case in 0..32u64 {
        let mut rng = SimRng::new(0x5311_0001 ^ case);
        let seed = rng.next_u64() % 1_000_000;
        let jobs = 40 + rng.index(260);
        let cfg = SwimConfig {
            jobs,
            total_input: (jobs as u64) * 850 * MB, // paper's per-job average
            largest: 24 * GB,
            mean_interarrival: SimDuration::from_secs(8),
            ..SwimConfig::default()
        };
        let t = SwimTrace::generate(&cfg, &mut SimRng::new(seed));
        assert_eq!(t.jobs.len(), jobs, "case {case}");
        // Totals within a few percent of the target.
        let total = t.total_input() as f64;
        let want = cfg.total_input as f64;
        assert!(
            (total - want).abs() / want < 0.06,
            "case {case}: total off: {total} vs {want}"
        );
        // Small-job fraction within tolerance.
        let frac = t.fraction_at_most(cfg.small_max);
        assert!(
            (frac - 0.85).abs() < 0.05,
            "case {case}: small fraction {frac}"
        );
        // Nobody exceeds the stated maximum; shuffles never exceed inputs.
        for j in &t.jobs {
            assert!(j.input_bytes <= cfg.largest, "case {case}");
            assert!(j.shuffle_bytes <= j.input_bytes, "case {case}");
            assert!(j.input_bytes >= 1, "case {case}");
        }
        // Arrivals are sorted.
        for w in t.jobs.windows(2) {
            assert!(w[0].submit <= w[1].submit, "case {case}");
        }
    }
}
