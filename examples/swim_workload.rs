//! The paper's headline experiment: the 200-job SWIM/Facebook trace under
//! HDFS, Ignem and HDFS-Inputs-in-RAM (Tables I–II, Figs. 5–6).
//!
//! ```text
//! cargo run --release --example swim_workload [jobs] [seed]
//! ```

use ignem_repro::cluster::config::{ClusterConfig, FsMode};
use ignem_repro::cluster::experiment::run_swim;
use ignem_repro::cluster::metrics::RunMetrics;
use ignem_repro::simcore::rng::SimRng;
use ignem_repro::simcore::units::GB;
use ignem_repro::workloads::swim::{SizeBin, SwimConfig, SwimTrace};

fn bins(m: &RunMetrics) -> [f64; 3] {
    let mut sum = [0.0; 3];
    let mut cnt = [0usize; 3];
    for p in &m.plans {
        let k = match SizeBin::of(p.input_bytes) {
            SizeBin::Small => 0,
            SizeBin::Medium => 1,
            SizeBin::Large => 2,
        };
        sum[k] += p.duration;
        cnt[k] += 1;
    }
    [0, 1, 2].map(|k| {
        if cnt[k] > 0 {
            sum[k] / cnt[k] as f64
        } else {
            0.0
        }
    })
}

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20180615);

    let swim_cfg = SwimConfig {
        jobs,
        total_input: (170 * GB) * jobs as u64 / 200,
        ..SwimConfig::default()
    };
    let trace = SwimTrace::generate(&swim_cfg, &mut SimRng::new(seed));
    println!(
        "SWIM trace: {} jobs, {:.0} GB total input, largest {:.1} GB, {:.0}% small\n",
        trace.jobs.len(),
        trace.total_input() as f64 / GB as f64,
        trace.largest_input() as f64 / GB as f64,
        trace.fraction_at_most(64_000_000) * 100.0
    );

    let cfg = ClusterConfig {
        seed,
        ..ClusterConfig::default()
    };
    let hdfs = run_swim(&cfg, FsMode::Hdfs, &trace, None);
    let ignem = run_swim(&cfg, FsMode::Ignem, &trace, None);
    let ram = run_swim(&cfg, FsMode::HdfsInputsInRam, &trace, None);

    println!(
        "{:<20} {:>10} {:>10} {:>10} {:>9}",
        "config", "job(s)", "map(s)", "read(s)", "mem-frac"
    );
    for (mode, m) in [("HDFS", &hdfs), ("Ignem", &ignem), ("Inputs-in-RAM", &ram)] {
        println!(
            "{mode:<20} {:>10.2} {:>10.2} {:>10.2} {:>8.0}%",
            m.mean_plan_duration(),
            m.mean_map_task_secs(),
            m.mean_block_read_secs(),
            m.memory_read_fraction() * 100.0
        );
    }
    println!(
        "\nSpeedup vs HDFS:  Ignem {:.1}% (paper 12%)   Inputs-in-RAM {:.1}% (paper 21%)",
        ignem.speedup_vs(&hdfs) * 100.0,
        ram.speedup_vs(&hdfs) * 100.0
    );

    let (bh, bi, br) = (bins(&hdfs), bins(&ignem), bins(&ram));
    println!("\nBy input-size bin (Fig. 5):");
    for (k, label) in ["<=64MB", "64-512MB", ">512MB"].iter().enumerate() {
        println!(
            "  {label:<10} Ignem {:>5.1}%   Inputs-in-RAM {:>5.1}%",
            (1.0 - bi[k] / bh[k]) * 100.0,
            (1.0 - br[k] / bh[k]) * 100.0
        );
    }
    println!(
        "\nIgnem stats: {} blocks migrated, {} deduped, {} discarded (missed reads), {} evicted",
        ignem.slave_stats.migrated,
        ignem.slave_stats.deduped,
        ignem.slave_stats.discarded,
        ignem.slave_stats.evicted
    );
}
