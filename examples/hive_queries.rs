//! Hive/TPC-DS queries accelerated by the one-off framework hook (Fig. 9).
//!
//! ```text
//! cargo run --release --example hive_queries
//! ```

use ignem_repro::cluster::config::{ClusterConfig, FsMode};
use ignem_repro::cluster::experiment::run_hive;
use ignem_repro::workloads::tpcds::fig9_queries;

fn main() {
    let cfg = ClusterConfig::default();
    let queries = fig9_queries();
    println!(
        "Running {} TPC-DS queries through the simulated Hive pipeline.\n\
         The Hive hook migrates each query's table inputs when compilation\n\
         finishes — one framework change accelerates every query.\n",
        queries.len()
    );
    let hdfs = run_hive(&cfg, FsMode::Hdfs, &queries);
    let ignem = run_hive(&cfg, FsMode::Ignem, &queries);

    println!(
        "{:<6} {:>9} {:>8} {:>10} {:>10} {:>9}",
        "query", "input", "stages", "HDFS(s)", "Ignem(s)", "speedup"
    );
    let mut total = 0.0;
    for ((qh, qi), q) in hdfs.plans.iter().zip(&ignem.plans).zip(&queries) {
        let sp = (1.0 - qi.duration / qh.duration) * 100.0;
        total += sp;
        println!(
            "{:<6} {:>7.1}GB {:>8} {:>10.1} {:>10.1} {:>8.1}%",
            qh.name,
            qh.input_bytes as f64 / 1e9,
            q.stages,
            qh.duration,
            qi.duration,
            sp
        );
    }
    println!(
        "\naverage speedup {:.1}% (paper: 20% average, up to 34%)",
        total / queries.len() as f64
    );
    println!(
        "The three largest queries (q82, q25, q29) gain less: their inputs\n\
         exceed what fits into the lead-time, exactly as §IV-G observes."
    );
}
