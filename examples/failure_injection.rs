//! Failure-resilience demo (paper §III-A4/A5): master failover, slave
//! restarts, whole-node failure, and dead-job reference cleanup — all
//! injected mid-workload.
//!
//! ```text
//! cargo run --release --example failure_injection
//! ```

use ignem_repro::cluster::prelude::*;
use ignem_repro::compute::{JobInput, JobSpec, SubmitOptions};
use ignem_repro::netsim::NodeId;
use ignem_repro::simcore::time::{SimDuration, SimTime};
use ignem_repro::simcore::units::{GB, MB};

fn files_for(prefix: &str, total: u64) -> Vec<(String, u64)> {
    (0..4)
        .map(|i| (format!("{prefix}/part-{i}"), total / 4))
        .collect()
}

fn job(name: &str, files: &[(String, u64)]) -> JobSpec {
    let mut spec = JobSpec::new(
        name,
        JobInput::DfsFiles(files.iter().map(|(p, _)| p.clone()).collect()),
    );
    spec.submit = SubmitOptions::with_migration();
    spec
}

fn run_with(label: &str, faults: Vec<(SimTime, Fault)>) {
    let files_a = files_for("/a", 2 * GB);
    let files_b = files_for("/b", 2 * GB);
    let mut all = files_a.clone();
    all.extend(files_b.clone());
    let plan = vec![
        PlannedJob::single("job-a", SimDuration::from_secs(1), job("job-a", &files_a)),
        PlannedJob::single("job-b", SimDuration::from_secs(25), job("job-b", &files_b)),
    ];
    let mut cfg = ClusterConfig::default();
    // A tight buffer so dead-job leftovers actually block the follower and
    // force the threshold-triggered liveness cleanup.
    cfg.ignem.buffer_capacity = 256 * MB;
    cfg.ignem.cleanup_threshold = 0.5;
    let m = World::new(cfg, FsMode::Ignem, &all, plan, faults).run();
    println!("--- {label} ---");
    for p in &m.plans {
        println!("  {} finished in {:.1}s", p.name, p.duration);
    }
    println!(
        "  slave stats: migrated {}, evicted {}, discarded {}, wasted {}, purges {}, liveness queries {}",
        m.slave_stats.migrated,
        m.slave_stats.evicted,
        m.slave_stats.discarded,
        m.slave_stats.wasted_reads,
        m.slave_stats.purges,
        m.slave_stats.liveness_queries
    );
    let leaked: f64 = m
        .mem_series
        .iter()
        .filter_map(|s| s.last().map(|&(_, v)| v))
        .sum();
    println!("  migration buffer at end: {leaked:.0} bytes (must be 0)\n");
    assert_eq!(leaked, 0.0, "migration buffer leaked");
}

fn main() {
    println!("Every scenario must finish all surviving jobs with a clean buffer.\n");
    run_with("no faults", vec![]);
    run_with(
        "master fails at t=5s (slaves purge reference lists)",
        vec![(SimTime::from_secs(5), Fault::MasterFail)],
    );
    run_with(
        "slaves on node0/node1 restart at t=6s (migrated data discarded)",
        vec![
            (SimTime::from_secs(6), Fault::SlaveRestart(NodeId(0))),
            (SimTime::from_secs(6), Fault::SlaveRestart(NodeId(1))),
        ],
    );
    run_with(
        "node3 fails outright at t=8s (tasks re-executed, replicas dropped)",
        vec![(SimTime::from_secs(8), Fault::NodeFail(NodeId(3)))],
    );
    run_with(
        "job-a killed at t=2s, no evict ever sent (liveness cleanup reclaims)",
        vec![(SimTime::from_secs(2), Fault::KillPlan(0))],
    );
    println!("All failure scenarios completed with zero leaked buffer bytes.");
}
