//! Failure-resilience demo (paper §III-A4/A5): master failover, slave
//! restarts, whole-node failure, dead-job reference cleanup, gray faults
//! (degraded disks, paused nodes, network partitions) and an unreliable
//! control plane — all injected mid-workload.
//!
//! ```text
//! cargo run --release --example failure_injection
//! ```

use ignem_repro::cluster::chaos::{run_chaos, ChaosConfig};
use ignem_repro::cluster::prelude::*;
use ignem_repro::compute::{JobInput, JobSpec, SubmitOptions};
use ignem_repro::netsim::rpc::RpcConfig;
use ignem_repro::netsim::NodeId;
use ignem_repro::simcore::time::{SimDuration, SimTime};
use ignem_repro::simcore::units::{GB, MB};

fn files_for(prefix: &str, total: u64) -> Vec<(String, u64)> {
    (0..4)
        .map(|i| (format!("{prefix}/part-{i}"), total / 4))
        .collect()
}

fn job(name: &str, files: &[(String, u64)]) -> JobSpec {
    let mut spec = JobSpec::new(
        name,
        JobInput::DfsFiles(files.iter().map(|(p, _)| p.clone()).collect()),
    );
    spec.submit = SubmitOptions::with_migration();
    spec
}

fn run_with(label: &str, rpc: RpcConfig, faults: Vec<(SimTime, Fault)>) {
    let files_a = files_for("/a", 2 * GB);
    let files_b = files_for("/b", 2 * GB);
    let mut all = files_a.clone();
    all.extend(files_b.clone());
    let plan = vec![
        PlannedJob::single("job-a", SimDuration::from_secs(1), job("job-a", &files_a)),
        PlannedJob::single("job-b", SimDuration::from_secs(25), job("job-b", &files_b)),
    ];
    let mut cfg = ClusterConfig::default();
    // A tight buffer so dead-job leftovers actually block the follower and
    // force the threshold-triggered liveness cleanup.
    cfg.ignem.buffer_capacity = 256 * MB;
    cfg.ignem.cleanup_threshold = 0.5;
    cfg.rpc = rpc;
    let m = World::new(cfg, FsMode::Ignem, &all, plan, faults)
        .with_validation()
        .run();
    println!("--- {label} ---");
    for p in &m.plans {
        println!("  {} finished in {:.1}s", p.name, p.duration);
    }
    println!(
        "  slave stats: migrated {}, evicted {}, discarded {}, wasted {}, purges {}, liveness queries {}",
        m.slave_stats.migrated,
        m.slave_stats.evicted,
        m.slave_stats.discarded,
        m.slave_stats.wasted_reads,
        m.slave_stats.purges,
        m.slave_stats.liveness_queries
    );
    println!(
        "  control plane: sent {}, delivered {}, dropped {}, duplicated {}, cut {} | acks {}, retries {}, gave up {}",
        m.rpc.sent,
        m.rpc.delivered,
        m.rpc.dropped,
        m.rpc.duplicated,
        m.rpc.cut,
        m.master_stats.acks,
        m.master_stats.retries,
        m.master_stats.gave_up
    );
    println!(
        "  recovery: leaked refs {} (must be 0), migrated bytes at end {} (must be 0)\n",
        m.leaked_job_refs, m.final_migrated_bytes
    );
    assert_eq!(m.leaked_job_refs, 0, "reference lists leaked");
    assert_eq!(m.final_migrated_bytes, 0, "migration buffer leaked");
}

fn main() {
    println!("Every scenario must finish all surviving jobs with a clean buffer.\n");
    let reliable = RpcConfig::default();
    let lossy = RpcConfig {
        drop_p: 0.2,
        dup_p: 0.1,
        jitter: SimDuration::from_millis(20),
    };

    run_with("no faults", reliable, vec![]);
    run_with(
        "master fails at t=5s (slaves purge reference lists)",
        reliable,
        vec![(SimTime::from_secs(5), Fault::MasterFail)],
    );
    run_with(
        "slaves on node0/node1 restart at t=6s (migrated data discarded)",
        reliable,
        vec![
            (SimTime::from_secs(6), Fault::SlaveRestart(NodeId(0))),
            (SimTime::from_secs(6), Fault::SlaveRestart(NodeId(1))),
        ],
    );
    run_with(
        "node3 fails outright at t=8s (tasks re-executed, replicas dropped)",
        reliable,
        vec![(SimTime::from_secs(8), Fault::NodeFail(NodeId(3)))],
    );
    run_with(
        "job-a killed at t=2s, no evict ever sent (liveness cleanup reclaims)",
        reliable,
        vec![(SimTime::from_secs(2), Fault::KillPlan(0))],
    );

    // Gray faults: the node stays up but misbehaves.
    run_with(
        "node2's disk degrades to 25% for 15s at t=3s",
        reliable,
        vec![(
            SimTime::from_secs(3),
            Fault::DiskDegrade(NodeId(2), 25, SimDuration::from_secs(15)),
        )],
    );
    run_with(
        "node1's daemon pauses for 5s at t=4s (deliveries deferred)",
        reliable,
        vec![(
            SimTime::from_secs(4),
            Fault::NodePause(NodeId(1), SimDuration::from_secs(5)),
        )],
    );
    run_with(
        "nodes 0-2 partitioned from the control plane for 8s at t=5s",
        reliable,
        vec![(
            SimTime::from_secs(5),
            Fault::Partition(
                vec![NodeId(0), NodeId(1), NodeId(2)],
                SimDuration::from_secs(8),
            ),
        )],
    );

    // Unreliable control plane: drops and duplicates are masked by acks,
    // retransmission and idempotent slave handling.
    run_with(
        "no faults, 20% drop + 10% duplication control plane",
        lossy,
        vec![],
    );
    run_with(
        "master failover over the lossy control plane",
        lossy,
        vec![(SimTime::from_secs(5), Fault::MasterFail)],
    );

    // Randomized chaos: one seeded run from the harness used by
    // `chaos_tests.rs`, with per-event invariant validation.
    let report = run_chaos(&ChaosConfig {
        seed: 2026,
        ..ChaosConfig::default()
    });
    println!("--- randomized chaos (seed 2026) ---");
    for (at, fault) in &report.faults {
        println!("  t={:.1}s: {fault:?}", at.as_secs_f64());
    }
    println!(
        "  {} of {} plans completed ({} deliberately killed); fingerprint {:#018x}",
        report.metrics.plans.len(),
        report.total_plans,
        report.killed_plans.len(),
        report.fingerprint
    );
    report.assert_invariants();

    println!("\nAll failure scenarios completed with zero leaked buffer bytes.");
}
