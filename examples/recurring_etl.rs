//! The paper's core motivating scenario (§I): **recurring jobs over fresh,
//! singly-read data** — log/click-stream ETL. Each run processes a new
//! file that was written earlier, is too big to keep in memory, and is
//! *cold* by the time the job reads it. Hot-data caching never helps here
//! (every block is read exactly once); Ignem's proactive migration does.
//!
//! ```text
//! cargo run --release --example recurring_etl [runs] [gb_per_run]
//! ```

use ignem_repro::cluster::prelude::*;
use ignem_repro::compute::{JobInput, JobSpec, SubmitOptions};
use ignem_repro::simcore::time::SimDuration;
use ignem_repro::simcore::units::GB;

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(12);
    let gb: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2);

    // One fresh log batch per ETL run.
    let files: Vec<(String, u64)> = (0..runs)
        .map(|i| (format!("/logs/batch-{i:03}"), gb * GB))
        .collect();

    let plan = |migrate: bool| -> Vec<PlannedJob> {
        files
            .iter()
            .enumerate()
            .map(|(i, (path, _))| {
                let mut spec = JobSpec::new(
                    format!("etl-{i:03}"),
                    JobInput::DfsFiles(vec![path.clone()]),
                );
                // Log parsing + sessionisation: moderate CPU, aggregated
                // output (the 10:1+ input:output reduction §II-A cites).
                spec.map_cpu_rate = 150e6;
                spec.shuffle_bytes = gb * GB / 20;
                spec.output_bytes = gb * GB / 50;
                spec.reducers = 4;
                if migrate {
                    spec.submit = SubmitOptions::with_migration();
                }
                // A new batch lands every ~90 s.
                PlannedJob::single(
                    format!("etl-{i:03}"),
                    SimDuration::from_secs(5 + 90 * i as u64),
                    spec,
                )
            })
            .collect()
    };

    println!(
        "Recurring ETL: {runs} runs x {gb} GB of fresh, singly-read log data.\n\
         Every block is read exactly once, so LRU/hot-data caching cannot\n\
         help — the class of jobs PACMan leaves on the table (30% of tasks\n\
         in its production workloads) and the one Ignem targets.\n"
    );

    let cfg = ClusterConfig::default();
    let hdfs = World::new(cfg.clone(), FsMode::Hdfs, &files, plan(false), vec![]).run();
    let ignem = World::new(cfg.clone(), FsMode::Ignem, &files, plan(true), vec![]).run();

    println!(
        "{:<8} {:>12} {:>12} {:>9}",
        "run", "HDFS(s)", "Ignem(s)", "speedup"
    );
    for (h, i) in hdfs.plans.iter().zip(&ignem.plans) {
        println!(
            "{:<8} {:>12.1} {:>12.1} {:>8.1}%",
            h.name,
            h.duration,
            i.duration,
            (1.0 - i.duration / h.duration) * 100.0
        );
    }
    println!(
        "\nmean ETL run: HDFS {:.1}s -> Ignem {:.1}s ({:.1}% faster)\n\
         memory reads under Ignem: {:.0}%  (every hit is a block that was\n\
         migrated during the run's lead-time and read exactly once)",
        hdfs.mean_plan_duration(),
        ignem.mean_plan_duration(),
        ignem.speedup_vs(&hdfs) * 100.0,
        ignem.memory_read_fraction() * 100.0
    );
}
