//! The Fig. 8 experiment: wordcount over 1–12 GB, with and without an
//! artificial +10 s of lead-time — including the paper's counter-intuitive
//! result that *adding delay can speed a job up* (migration reads the disk
//! more efficiently than a dozen concurrent mappers).
//!
//! ```text
//! cargo run --release --example wordcount_sweep
//! ```

use ignem_repro::cluster::config::{ClusterConfig, FsMode};
use ignem_repro::cluster::experiment::run_wordcount;
use ignem_repro::simcore::time::SimDuration;
use ignem_repro::storage::device::DeviceProfile;
use ignem_repro::workloads::jobs::WORDCOUNT_SWEEP_GB;

fn main() {
    // Fig. 8 lives in the disk's seek-thrashing operating point.
    let cfg = ClusterConfig {
        disk: DeviceProfile::hdd_contended(),
        ..ClusterConfig::default()
    };

    println!(
        "{:>4} {:>9} {:>9} {:>11} {:>9}",
        "GB", "HDFS", "Ignem", "Ignem+10s", "In-RAM"
    );
    for gb in WORDCOUNT_SWEEP_GB {
        let h = run_wordcount(&cfg, FsMode::Hdfs, gb, SimDuration::ZERO);
        let i = run_wordcount(&cfg, FsMode::Ignem, gb, SimDuration::ZERO);
        let i10 = run_wordcount(&cfg, FsMode::Ignem, gb, SimDuration::from_secs(10));
        let r = run_wordcount(&cfg, FsMode::HdfsInputsInRam, gb, SimDuration::ZERO);
        println!(
            "{gb:>4} {:>8.1}s {:>8.1}s {:>10.1}s {:>8.1}s",
            h.mean_plan_duration(),
            i.mean_plan_duration(),
            i10.mean_plan_duration(),
            r.mean_plan_duration()
        );
    }
    println!(
        "\nShape to look for (paper §IV-E/F):\n\
         * Ignem tracks Inputs-in-RAM while the input fits the lead-time;\n\
         * Ignem+10s pays its sleep at 1 GB, crosses HDFS around 2 GB;\n\
         * from ~4 GB the sleep buys so much extra (efficient, sequential)\n\
           migration that Ignem+10s beats plain Ignem — delay as a speedup."
    );
}
