//! Quickstart: migrate one cold job's input with Ignem and compare the
//! three file-system configurations.
//!
//! ```text
//! cargo run --release --example quickstart [input_gb]
//! ```

use ignem_repro::cluster::prelude::*;
use ignem_repro::compute::{JobInput, JobSpec, SubmitOptions};
use ignem_repro::simcore::time::SimDuration;
use ignem_repro::simcore::units::GB;

fn main() {
    let gb: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2);
    println!("A single {gb} GB scan job on the paper's 8-node cluster.\n");

    // Input data: four cold files in the DFS.
    let files: Vec<(String, u64)> = (0..4)
        .map(|i| (format!("/data/part-{i}"), gb * GB / 4))
        .collect();

    let plan = |migrate: bool| {
        let mut spec = JobSpec::new(
            "scan",
            JobInput::DfsFiles(files.iter().map(|(p, _)| p.clone()).collect()),
        );
        if migrate {
            // The one-line job-submitter change the paper describes:
            // tell Ignem which files the job will read.
            spec.submit = SubmitOptions::with_migration();
        }
        vec![PlannedJob::single("scan", SimDuration::from_secs(1), spec)]
    };

    let cfg = ClusterConfig::default();
    let mut baseline = 0.0;
    for (mode, migrate) in [
        (FsMode::Hdfs, false),
        (FsMode::Ignem, true),
        (FsMode::HdfsInputsInRam, false),
    ] {
        let m = World::new(cfg.clone(), mode, &files, plan(migrate), vec![]).run();
        let d = m.mean_plan_duration();
        if mode == FsMode::Hdfs {
            baseline = d;
        }
        println!(
            "{mode:<20} job {d:>6.2}s   mean map task {:>6.2}s   memory reads {:>4.0}%   speedup {:>5.1}%",
            m.mean_map_task_secs(),
            m.memory_read_fraction() * 100.0,
            (1.0 - d / baseline) * 100.0
        );
    }
    println!(
        "\nIgnem migrated the cold input into memory during the job's lead-time\n\
         (submitter overhead + AM startup + scheduler heartbeats), so its map\n\
         tasks read from RAM instead of the cold disk."
    );
}
