//! The paper's §II feasibility analysis over (synthesised) Google-cluster
//! trace statistics: is there enough lead-time, residual disk bandwidth and
//! memory to migrate cold data? (Figs. 3–4.)
//!
//! ```text
//! cargo run --release --example google_trace_analysis
//! ```

use ignem_repro::simcore::rng::SimRng;
use ignem_repro::simcore::units::{GB, MB};
use ignem_repro::workloads::google::{
    GoogleTrace, GoogleTraceConfig, MemorySufficiency, UtilizationTimelines,
};

fn main() {
    let cfg = GoogleTraceConfig::default();
    let mut rng = SimRng::new(2011);
    let trace = GoogleTrace::generate(&cfg, &mut rng);

    let (mean, median) = trace.lead_time_stats();
    println!(
        "Lead-time (job queueing) statistics over {} jobs:",
        trace.jobs.len()
    );
    println!("  mean {mean:.1}s   median {median:.1}s   (paper: 8.8s / 1.8s)");

    let frac = trace.lead_time_sufficiency();
    println!(
        "\nFig. 3 — lead-time sufficiency:\n  {:.1}% of jobs could migrate their whole input within their lead-time\n  (paper: 81%)",
        frac * 100.0
    );
    let mut ratios = trace.read_to_lead_ratios();
    print!("  read-time/lead-time percentiles: ");
    for p in [25.0, 50.0, 75.0, 90.0] {
        print!("p{p:.0}={:.2}  ", ratios.percentile(p));
    }
    println!();

    let util = UtilizationTimelines::generate(&cfg, &mut rng);
    let series = util.group_mean_timeline(40);
    let peak = series.iter().cloned().fold(0.0, f64::max);
    println!(
        "\nFig. 4 — disk utilisation over 24h across {} servers:\n  overall mean {:.1}% (paper: 3.1% daily)\n  peak of the 40-server mean {:.1}% (paper: at most ~5%)",
        cfg.servers,
        util.overall_mean() * 100.0,
        peak * 100.0
    );
    let mem = MemorySufficiency::worst_case(50, 256 * MB, 128 * GB);
    println!(
        "\n§II-C2 — memory sufficiency (worst case):\n  {} tasks x {} MB blocks = {:.1} GB needed, {:.0}% of a {} GB server — {}",
        mem.tasks_per_server,
        mem.block_bytes / MB,
        mem.required_bytes as f64 / GB as f64,
        mem.ram_fraction() * 100.0,
        mem.server_ram_bytes / GB,
        if mem.is_sufficient() { "plenty of headroom" } else { "insufficient" }
    );

    println!(
        "\nConclusion (paper §II): production clusters have abundant residual\n\
         disk bandwidth, sufficient lead-time and spare memory — cold-data\n\
         migration is feasible without a provisioning change."
    );
}
