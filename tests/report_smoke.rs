//! Smoke tests for the report harness: sections render, CSVs land on disk,
//! and repeated generation is byte-identical (the reproducibility promise
//! EXPERIMENTS.md makes).

use ignem_repro::bench::Report;

fn out_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ignem-report-smoke-{tag}"))
}

#[test]
fn table1_renders_and_writes_csv() {
    let dir = out_dir("t1");
    let mut r = Report::new(&dir);
    let s = r.table1();
    assert_eq!(s.id, "table1");
    assert!(s.text.contains("HDFS"));
    assert!(s.text.contains("Ignem"));
    let csv = std::fs::read_to_string(dir.join("table1_swim_job_duration.csv")).unwrap();
    assert!(csv.starts_with("config,mean_job_secs,speedup_vs_hdfs_pct"));
    assert_eq!(csv.lines().count(), 4);
}

#[test]
fn report_generation_is_reproducible() {
    let (da, db) = (out_dir("a"), out_dir("b"));
    let mut a = Report::new(&da);
    let mut b = Report::new(&db);
    assert_eq!(a.table1().text, b.table1().text);
    assert_eq!(a.fig3().text, b.fig3().text);
    let ca = std::fs::read_to_string(da.join("fig3_read_to_lead_cdf.csv")).unwrap();
    let cb = std::fs::read_to_string(db.join("fig3_read_to_lead_cdf.csv")).unwrap();
    assert_eq!(ca, cb);
}

#[test]
fn ablation_sections_render() {
    let mut r = Report::new(out_dir("abl"));
    let s = r.ablation_eviction();
    assert!(s.text.contains("explicit"));
    assert!(s.text.contains("implicit"));
    let s = r.extension_caching();
    assert!(s.text.contains("LRU cache"));
}
