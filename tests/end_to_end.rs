//! Repository-level integration tests: the headline paper claims must hold
//! on every build, end to end, across all crates.

use ignem_repro::cluster::config::{ClusterConfig, FsMode};
use ignem_repro::cluster::experiment::{
    run_hive, run_read_micro, run_sort, run_swim, run_wordcount,
};
use ignem_repro::core::policy::Policy;
use ignem_repro::simcore::rng::SimRng;
use ignem_repro::simcore::time::SimDuration;
use ignem_repro::simcore::units::GB;
use ignem_repro::storage::device::DeviceProfile;
use ignem_repro::workloads::google::{GoogleTrace, GoogleTraceConfig};
use ignem_repro::workloads::swim::{SwimConfig, SwimTrace};
use ignem_repro::workloads::tpcds::fig9_queries;

fn swim_trace(jobs: usize) -> SwimTrace {
    let cfg = SwimConfig {
        jobs,
        total_input: (170 * GB) * jobs as u64 / 200,
        ..SwimConfig::default()
    };
    SwimTrace::generate(&cfg, &mut SimRng::new(20180615))
}

/// Table I's claim: Ignem lands between HDFS and the in-RAM upper bound,
/// realising a substantial fraction of it.
#[test]
fn swim_speedup_ordering_and_fraction() {
    let cfg = ClusterConfig::default();
    let trace = swim_trace(80);
    let hdfs = run_swim(&cfg, FsMode::Hdfs, &trace, None);
    let ignem = run_swim(&cfg, FsMode::Ignem, &trace, None);
    let ram = run_swim(&cfg, FsMode::HdfsInputsInRam, &trace, None);
    let si = ignem.speedup_vs(&hdfs);
    let sr = ram.speedup_vs(&hdfs);
    assert!(si > 0.03, "Ignem speedup too small: {si}");
    assert!(sr > si, "upper bound must beat Ignem: {sr} vs {si}");
    let fraction = si / sr;
    assert!(
        (0.3..1.0).contains(&fraction),
        "Ignem should realise a large fraction of the bound, got {fraction}"
    );
}

/// Table II's claim: mapper tasks accelerate much more than jobs do.
#[test]
fn task_gains_exceed_job_gains() {
    let cfg = ClusterConfig::default();
    let trace = swim_trace(80);
    let hdfs = run_swim(&cfg, FsMode::Hdfs, &trace, None);
    let ignem = run_swim(&cfg, FsMode::Ignem, &trace, None);
    let job_gain = ignem.speedup_vs(&hdfs);
    let task_gain = 1.0 - ignem.mean_map_task_secs() / hdfs.mean_map_task_secs();
    assert!(
        task_gain > 2.0 * job_gain,
        "task gain {task_gain} should dwarf job gain {job_gain}"
    );
}

/// Fig. 6's claim: non-migrated blocks also improve (less contention).
#[test]
fn non_migrated_reads_improve_too() {
    let cfg = ClusterConfig::default();
    let trace = swim_trace(80);
    let hdfs = run_swim(&cfg, FsMode::Hdfs, &trace, None);
    let ignem = run_swim(&cfg, FsMode::Ignem, &trace, None);
    // Mean over DISK reads only, under Ignem, vs all reads under HDFS.
    let disk_reads: Vec<f64> = ignem
        .block_reads
        .iter()
        .filter(|r| r.kind != ignem_repro::cluster::ReadKind::Memory)
        .map(|r| r.secs)
        .collect();
    assert!(!disk_reads.is_empty());
    let mean_disk = disk_reads.iter().sum::<f64>() / disk_reads.len() as f64;
    assert!(
        mean_disk < hdfs.mean_block_read_secs() * 1.05,
        "cold reads under Ignem ({mean_disk:.2}s) should not regress vs HDFS ({:.2}s)",
        hdfs.mean_block_read_secs()
    );
}

/// §IV-C5: smallest-job-first beats FIFO.
#[test]
fn prioritization_helps() {
    let cfg = ClusterConfig::default();
    let trace = swim_trace(120);
    let hdfs = run_swim(&cfg, FsMode::Hdfs, &trace, None);
    let sjf = run_swim(&cfg, FsMode::Ignem, &trace, Some(Policy::SmallestJobFirst));
    let fifo = run_swim(&cfg, FsMode::Ignem, &trace, Some(Policy::Fifo));
    assert!(
        sjf.speedup_vs(&hdfs) >= fifo.speedup_vs(&hdfs) - 1e-9,
        "SJF {} must not lose to FIFO {}",
        sjf.speedup_vs(&hdfs),
        fifo.speedup_vs(&hdfs)
    );
}

/// Table III's ordering for sort.
#[test]
fn sort_ordering() {
    let cfg = ClusterConfig::default();
    let h = run_sort(&cfg, FsMode::Hdfs, 8 * GB).mean_plan_duration();
    let i = run_sort(&cfg, FsMode::Ignem, 8 * GB).mean_plan_duration();
    let r = run_sort(&cfg, FsMode::HdfsInputsInRam, 8 * GB).mean_plan_duration();
    assert!(r < i && i < h, "expected {r} < {i} < {h}");
}

/// Fig. 8's counter-intuitive claim: at a large enough input, *adding 10 s
/// of delay* makes the job faster than not delaying.
#[test]
fn added_delay_can_speed_up_a_job() {
    let cfg = ClusterConfig {
        disk: DeviceProfile::hdd_contended(),
        ..ClusterConfig::default()
    };
    let plain = run_wordcount(&cfg, FsMode::Ignem, 4, SimDuration::ZERO);
    let delayed = run_wordcount(&cfg, FsMode::Ignem, 4, SimDuration::from_secs(10));
    assert!(
        delayed.mean_plan_duration() < plain.mean_plan_duration(),
        "+10s ({:.1}s) should beat plain Ignem ({:.1}s) at 4GB",
        delayed.mean_plan_duration(),
        plain.mean_plan_duration()
    );
    // ...but hurt at 1 GB, where the input fits the natural lead-time.
    let plain1 = run_wordcount(&cfg, FsMode::Ignem, 1, SimDuration::ZERO);
    let delayed1 = run_wordcount(&cfg, FsMode::Ignem, 1, SimDuration::from_secs(10));
    assert!(delayed1.mean_plan_duration() > plain1.mean_plan_duration());
}

/// Fig. 9: every Hive query gains; the biggest inputs gain the least.
#[test]
fn hive_queries_all_gain() {
    let cfg = ClusterConfig::default();
    let queries = fig9_queries();
    let h = run_hive(&cfg, FsMode::Hdfs, &queries);
    let i = run_hive(&cfg, FsMode::Ignem, &queries);
    let speedups: Vec<f64> = h
        .plans
        .iter()
        .zip(&i.plans)
        .map(|(qh, qi)| 1.0 - qi.duration / qh.duration)
        .collect();
    assert!(speedups.iter().all(|&s| s > 0.0), "{speedups:?}");
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    assert!((0.1..0.35).contains(&avg), "avg speedup {avg}");
    // The large-input tail gains less than the best small query.
    let best_small = speedups[..7].iter().cloned().fold(0.0, f64::max);
    let tail_max = speedups[7..].iter().cloned().fold(0.0, f64::max);
    assert!(tail_max < best_small, "{tail_max} vs {best_small}");
}

/// Fig. 1/2: the three media separate cleanly under identical workloads.
#[test]
fn media_ordering_under_concurrency() {
    let cfg = ClusterConfig::default();
    let hdd = run_read_micro(&cfg, FsMode::Hdfs, 24, 8);
    let mut ssd_cfg = cfg.clone();
    ssd_cfg.disk = DeviceProfile::ssd();
    let ssd = run_read_micro(&ssd_cfg, FsMode::Hdfs, 24, 8);
    let ram = run_read_micro(&cfg, FsMode::HdfsInputsInRam, 24, 8);
    let (h, s, r) = (
        hdd.mean_block_read_secs(),
        ssd.mean_block_read_secs(),
        ram.mean_block_read_secs(),
    );
    assert!(h / r > 20.0, "HDD/RAM ratio too small: {}", h / r);
    assert!(s / r > 2.0, "SSD/RAM ratio too small: {}", s / r);
    assert!(h > s && s > r);
}

/// Fig. 3: the synthetic Google trace reproduces the 81% sufficiency.
#[test]
fn google_trace_sufficiency() {
    let t = GoogleTrace::generate(&GoogleTraceConfig::default(), &mut SimRng::new(99));
    let frac = t.lead_time_sufficiency();
    assert!((frac - 0.81).abs() < 0.03, "sufficiency {frac}");
}

/// Determinism across the whole stack: same seed, same everything.
#[test]
fn whole_stack_determinism() {
    let cfg = ClusterConfig::default();
    let trace = swim_trace(40);
    let a = run_swim(&cfg, FsMode::Ignem, &trace, None);
    let b = run_swim(&cfg, FsMode::Ignem, &trace, None);
    assert_eq!(a.plans, b.plans);
    assert_eq!(a.jobs, b.jobs);
    assert_eq!(a.slave_stats, b.slave_stats);
    assert_eq!(a.makespan, b.makespan);
}
